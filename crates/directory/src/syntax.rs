//! Attribute syntaxes: the set `T` of value types from Definition 2.1.
//!
//! The paper assumes "a set `T` of types, each with an associated domain
//! `dom(t)`" and a typing function `τ : A → T`. LDAP calls these *attribute
//! syntaxes* (RFC 2252). We implement the syntaxes a white-pages or DEN-style
//! directory actually uses, each with a validator defining its domain and a
//! matching rule defining value equality within the domain.

use std::fmt;

/// The value type associated with an attribute (the paper's `t ∈ T`).
///
/// Each syntax defines a domain `dom(t)` via [`Syntax::validate`], and an
/// equality matching rule via [`Syntax::normalize`]: two raw strings denote
/// the same domain value iff their normalizations are byte-equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Syntax {
    /// Case-insensitive directory string (LDAP `DirectoryString` with
    /// `caseIgnoreMatch`). This is the paper's basic `string` type, and the
    /// type of the distinguished `objectClass` attribute.
    DirectoryString,
    /// Case-sensitive string (`caseExactMatch`).
    CaseExactString,
    /// IA5 (ASCII) string, case-insensitive — used for mail addresses.
    Ia5String,
    /// Signed 64-bit integer (LDAP `INTEGER`).
    Integer,
    /// Boolean: `TRUE` or `FALSE`.
    Boolean,
    /// Telephone number: digits, `+`, and separators; separators ignored for
    /// matching (`telephoneNumberMatch`).
    TelephoneNumber,
    /// Distinguished name; matching is by normalized DN form.
    DnSyntax,
    /// Generalized time `YYYYMMDDHHMMSSZ`.
    GeneralizedTime,
    /// URI: requires a scheme prefix, matched case-sensitively except scheme.
    Uri,
    /// Opaque octet string, matched byte-exactly.
    OctetString,
}

/// All syntaxes, for registry iteration and property tests.
pub const ALL_SYNTAXES: [Syntax; 10] = [
    Syntax::DirectoryString,
    Syntax::CaseExactString,
    Syntax::Ia5String,
    Syntax::Integer,
    Syntax::Boolean,
    Syntax::TelephoneNumber,
    Syntax::DnSyntax,
    Syntax::GeneralizedTime,
    Syntax::Uri,
    Syntax::OctetString,
];

/// Why a raw value is outside a syntax's domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyntaxViolation {
    /// Value is empty but the syntax requires content.
    Empty,
    /// Value contains a character outside the syntax's repertoire.
    BadCharacter {
        /// Byte offset of the offending character.
        position: usize,
        /// The offending character.
        ch: char,
    },
    /// Value failed structural validation (integer overflow, bad date, ...).
    Malformed(String),
}

impl fmt::Display for SyntaxViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntaxViolation::Empty => write!(f, "empty value"),
            SyntaxViolation::BadCharacter { position, ch } => {
                write!(f, "character {ch:?} at byte {position} not allowed")
            }
            SyntaxViolation::Malformed(msg) => write!(f, "malformed value: {msg}"),
        }
    }
}

impl std::error::Error for SyntaxViolation {}

impl Syntax {
    /// Human-readable name, matching LDAP terminology where one exists.
    pub fn name(self) -> &'static str {
        match self {
            Syntax::DirectoryString => "directoryString",
            Syntax::CaseExactString => "caseExactString",
            Syntax::Ia5String => "ia5String",
            Syntax::Integer => "integer",
            Syntax::Boolean => "boolean",
            Syntax::TelephoneNumber => "telephoneNumber",
            Syntax::DnSyntax => "dn",
            Syntax::GeneralizedTime => "generalizedTime",
            Syntax::Uri => "uri",
            Syntax::OctetString => "octetString",
        }
    }

    /// Looks a syntax up by its [`name`](Syntax::name).
    pub fn by_name(name: &str) -> Option<Syntax> {
        ALL_SYNTAXES.iter().copied().find(|s| s.name() == name)
    }

    /// Checks that `raw` lies in this syntax's domain (the paper's
    /// `v ∈ dom(t)` condition, Definition 2.1(3a)).
    pub fn validate(self, raw: &str) -> Result<(), SyntaxViolation> {
        match self {
            Syntax::DirectoryString | Syntax::CaseExactString => {
                if raw.is_empty() {
                    Err(SyntaxViolation::Empty)
                } else {
                    Ok(())
                }
            }
            Syntax::Ia5String => {
                if raw.is_empty() {
                    return Err(SyntaxViolation::Empty);
                }
                match raw.char_indices().find(|(_, c)| !c.is_ascii()) {
                    Some((position, ch)) => Err(SyntaxViolation::BadCharacter { position, ch }),
                    None => Ok(()),
                }
            }
            Syntax::Integer => {
                if raw.is_empty() {
                    return Err(SyntaxViolation::Empty);
                }
                raw.parse::<i64>()
                    .map(|_| ())
                    .map_err(|e| SyntaxViolation::Malformed(e.to_string()))
            }
            Syntax::Boolean => match raw {
                "TRUE" | "FALSE" => Ok(()),
                _ => Err(SyntaxViolation::Malformed(format!(
                    "boolean must be TRUE or FALSE, got {raw:?}"
                ))),
            },
            Syntax::TelephoneNumber => {
                if raw.is_empty() {
                    return Err(SyntaxViolation::Empty);
                }
                let mut digits = 0usize;
                for (position, ch) in raw.char_indices() {
                    match ch {
                        '0'..='9' => digits += 1,
                        '+' | ' ' | '-' | '(' | ')' | '.' => {}
                        _ => return Err(SyntaxViolation::BadCharacter { position, ch }),
                    }
                }
                if digits == 0 {
                    Err(SyntaxViolation::Malformed("no digits in telephone number".into()))
                } else {
                    Ok(())
                }
            }
            Syntax::DnSyntax => crate::dn::Dn::parse(raw)
                .map(|_| ())
                .map_err(|e| SyntaxViolation::Malformed(e.to_string())),
            Syntax::GeneralizedTime => validate_generalized_time(raw),
            Syntax::Uri => {
                let scheme_end = raw
                    .find(':')
                    .ok_or_else(|| SyntaxViolation::Malformed("URI missing scheme".into()))?;
                if scheme_end == 0 {
                    return Err(SyntaxViolation::Malformed("URI has empty scheme".into()));
                }
                let scheme = &raw[..scheme_end];
                if !scheme.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
                    || !scheme
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.'))
                {
                    return Err(SyntaxViolation::Malformed(format!("bad URI scheme {scheme:?}")));
                }
                Ok(())
            }
            Syntax::OctetString => Ok(()),
        }
    }

    /// Produces the canonical (matching) form of a valid value. Two raw
    /// strings denote the same domain value iff their normalizations are
    /// equal. Callers should [`validate`](Syntax::validate) first; for
    /// invalid input the result is unspecified but deterministic.
    pub fn normalize(self, raw: &str) -> String {
        match self {
            Syntax::DirectoryString | Syntax::Ia5String => normalize_case_ignore(raw),
            Syntax::CaseExactString
            | Syntax::Boolean
            | Syntax::GeneralizedTime
            | Syntax::OctetString => raw.to_owned(),
            Syntax::Integer => {
                raw.parse::<i64>().map(|v| v.to_string()).unwrap_or_else(|_| raw.to_owned())
            }
            Syntax::TelephoneNumber => {
                raw.chars().filter(|c| c.is_ascii_digit() || *c == '+').collect()
            }
            Syntax::DnSyntax => crate::dn::Dn::parse(raw)
                .map(|dn| dn.to_normalized_string())
                .unwrap_or_else(|_| normalize_case_ignore(raw)),
            Syntax::Uri => match raw.find(':') {
                Some(i) => {
                    let mut out = raw[..i].to_ascii_lowercase();
                    out.push_str(&raw[i..]);
                    out
                }
                None => raw.to_owned(),
            },
        }
    }

    /// True iff two raw values match under this syntax's equality rule.
    pub fn values_match(self, a: &str, b: &str) -> bool {
        self.normalize(a) == self.normalize(b)
    }

    /// Compares two values under the syntax's ordering rule, if it has one.
    /// Integers compare numerically; strings compare by normalized form;
    /// generalized times compare lexicographically (which is chronological).
    pub fn compare(self, a: &str, b: &str) -> Option<std::cmp::Ordering> {
        match self {
            Syntax::Integer => {
                let (a, b) = (a.parse::<i64>().ok()?, b.parse::<i64>().ok()?);
                Some(a.cmp(&b))
            }
            Syntax::Boolean | Syntax::OctetString | Syntax::DnSyntax => None,
            _ => Some(self.normalize(a).cmp(&self.normalize(b))),
        }
    }
}

impl fmt::Display for Syntax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Case-ignore matching per RFC 2252: fold case and collapse internal
/// whitespace runs, trimming the ends.
pub(crate) fn normalize_case_ignore(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut pending_space = false;
    for ch in raw.trim().chars() {
        if ch.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            out.extend(ch.to_lowercase());
        }
    }
    out
}

fn validate_generalized_time(raw: &str) -> Result<(), SyntaxViolation> {
    let bytes = raw.as_bytes();
    if bytes.len() != 15 || bytes[14] != b'Z' {
        return Err(SyntaxViolation::Malformed("generalized time must be YYYYMMDDHHMMSSZ".into()));
    }
    if let Some(pos) = bytes[..14].iter().position(|b| !b.is_ascii_digit()) {
        return Err(SyntaxViolation::BadCharacter {
            position: pos,
            ch: raw[pos..].chars().next().unwrap_or('?'),
        });
    }
    let field = |range: std::ops::Range<usize>| -> u32 { raw[range].parse().unwrap_or(0) };
    let (month, day) = (field(4..6), field(6..8));
    let (hour, minute, second) = (field(8..10), field(10..12), field(12..14));
    if !(1..=12).contains(&month) {
        return Err(SyntaxViolation::Malformed(format!("month {month} out of range")));
    }
    if !(1..=31).contains(&day) {
        return Err(SyntaxViolation::Malformed(format!("day {day} out of range")));
    }
    if hour > 23 || minute > 59 || second > 60 {
        return Err(SyntaxViolation::Malformed("time of day out of range".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_string_is_case_insensitive() {
        let s = Syntax::DirectoryString;
        assert!(s.values_match("Laks  Lakshmanan", "laks lakshmanan"));
        assert!(!s.values_match("laks", "dan"));
    }

    #[test]
    fn case_exact_distinguishes_case() {
        assert!(!Syntax::CaseExactString.values_match("AT&T", "at&t"));
        assert!(Syntax::CaseExactString.values_match("AT&T", "AT&T"));
    }

    #[test]
    fn ia5_rejects_non_ascii() {
        assert!(Syntax::Ia5String.validate("laks@cs.concordia.ca").is_ok());
        assert!(matches!(
            Syntax::Ia5String.validate("sübject"),
            Err(SyntaxViolation::BadCharacter { .. })
        ));
    }

    #[test]
    fn integer_domain_and_matching() {
        assert!(Syntax::Integer.validate("42").is_ok());
        assert!(Syntax::Integer.validate("-7").is_ok());
        assert!(Syntax::Integer.validate("4.2").is_err());
        assert!(Syntax::Integer.validate("").is_err());
        assert!(Syntax::Integer.values_match("007", "7"));
        assert_eq!(Syntax::Integer.compare("9", "10"), Some(std::cmp::Ordering::Less));
    }

    #[test]
    fn boolean_domain() {
        assert!(Syntax::Boolean.validate("TRUE").is_ok());
        assert!(Syntax::Boolean.validate("FALSE").is_ok());
        assert!(Syntax::Boolean.validate("true").is_err());
    }

    #[test]
    fn telephone_matching_ignores_separators() {
        let t = Syntax::TelephoneNumber;
        assert!(t.validate("+1 (973) 360-8680").is_ok());
        assert!(t.values_match("+1 (973) 360-8680", "+19733608680"));
        assert!(t.validate("call me").is_err());
    }

    #[test]
    fn generalized_time_validation() {
        let g = Syntax::GeneralizedTime;
        assert!(g.validate("20000315120000Z").is_ok());
        assert!(g.validate("20001315120000Z").is_err()); // month 13
        assert!(g.validate("20000315120000").is_err()); // missing Z
        assert!(g.validate("2000031512000Z").is_err()); // short
        assert_eq!(g.compare("19990101000000Z", "20000101000000Z"), Some(std::cmp::Ordering::Less));
    }

    #[test]
    fn uri_validation_and_matching() {
        assert!(Syntax::Uri.validate("http://www.att.com/").is_ok());
        assert!(Syntax::Uri.validate("no-scheme-here").is_err());
        assert!(Syntax::Uri.validate(":empty").is_err());
        assert!(Syntax::Uri.values_match("HTTP://www.att.com/", "http://www.att.com/"));
        // Path is case-sensitive.
        assert!(!Syntax::Uri.values_match("http://a/X", "http://a/x"));
    }

    #[test]
    fn case_ignore_normalization_collapses_whitespace() {
        assert_eq!(normalize_case_ignore("  A  B\tC "), "a b c");
        assert_eq!(normalize_case_ignore(""), "");
    }

    #[test]
    fn name_lookup_roundtrips() {
        for s in ALL_SYNTAXES {
            assert_eq!(Syntax::by_name(s.name()), Some(s));
        }
        assert_eq!(Syntax::by_name("nope"), None);
    }
}
