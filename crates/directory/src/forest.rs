//! The directory forest: Definition 2.1(4)'s binary relation `N ⊆ R × R`
//! such that `(R, N)` is a forest.
//!
//! Entries live in an arena ([`Forest`]) indexed by [`EntryId`]. Structure is
//! kept as first-child/next-sibling links, so child order is stable and
//! insertion is O(1). For the query engine, every node carries a
//! *(preorder, postorder)* interval: `a` is a proper ancestor of `d` iff
//! `pre(a) < pre(d)` and `post(d) < post(a)`. Numbering is maintained lazily:
//! structural updates mark it dirty and [`Forest::ensure_numbered`] rebuilds
//! it in one O(n) traversal — the classic amortisation for the
//! bulk-load-then-query pattern the paper's algorithms assume ("when the
//! directory entries are sorted", §3.2).
//!
//! LDAP update discipline (paper §4.1) is enforced here: new entries are
//! roots or children of existing entries; only leaves can be removed one at a
//! time ([`Forest::remove_leaf`]), with [`Forest::remove_subtree`] as the
//! paper's subtree-granularity composite.

use std::fmt;

/// Stable handle to an entry slot in a [`Forest`].
///
/// Ids are small integers suitable for direct indexing in side tables.
/// Removing an entry frees its slot for reuse by later insertions, so holders
/// of stale ids should check [`Forest::contains`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(u32);

impl EntryId {
    /// The raw slot index, for side-table indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a raw index (e.g. when iterating side tables).
    pub fn from_index(index: usize) -> EntryId {
        EntryId(u32::try_from(index).expect("entry index fits u32"))
    }
}

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Node {
    parent: Option<EntryId>,
    first_child: Option<EntryId>,
    last_child: Option<EntryId>,
    prev_sibling: Option<EntryId>,
    next_sibling: Option<EntryId>,
    /// Preorder rank; valid only while `Forest::numbering_valid`.
    pre: u32,
    /// Postorder rank; valid only while `Forest::numbering_valid`.
    post: u32,
    /// Maximum preorder rank within this node's subtree; valid only while
    /// `Forest::numbering_valid`. A node `a` properly contains `d` iff
    /// `pre(a) < pre(d) && pre(d) <= end(a)` — a containment test in a
    /// single (preorder) coordinate space, which is what the merge joins in
    /// `bschema-query` rely on.
    end: u32,
    alive: bool,
}

impl Node {
    fn detached() -> Node {
        Node {
            parent: None,
            first_child: None,
            last_child: None,
            prev_sibling: None,
            next_sibling: None,
            pre: 0,
            post: 0,
            end: 0,
            alive: true,
        }
    }
}

/// Errors from structural forest updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestError {
    /// The referenced entry does not exist (never created, or removed).
    NoSuchEntry(EntryId),
    /// `remove_leaf` was called on an entry that still has children —
    /// forbidden by the LDAP update discipline (paper §4.1).
    NotALeaf(EntryId),
    /// `move_subtree` would place an entry under itself or one of its own
    /// descendants.
    MoveIntoSelf {
        /// The subtree being moved.
        moved: EntryId,
        /// The illegal destination.
        target: EntryId,
    },
    /// A slot-exact snapshot ([`Forest::from_slots`]) is internally
    /// inconsistent — out-of-bound slots, duplicate slots, a parent that
    /// is not alive yet, or a free list that does not cover exactly the
    /// dead slots.
    InvalidSnapshot {
        /// What was wrong with the snapshot.
        reason: &'static str,
    },
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::NoSuchEntry(id) => write!(f, "entry {id} does not exist"),
            ForestError::NotALeaf(id) => {
                write!(f, "entry {id} has descendants and cannot be deleted (LDAP allows leaf deletion only)")
            }
            ForestError::MoveIntoSelf { moved, target } => {
                write!(f, "cannot move entry {moved} under {target}: the destination is inside the moved subtree")
            }
            ForestError::InvalidSnapshot { reason } => {
                write!(f, "invalid slot snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for ForestError {}

/// An arena forest with lazy preorder/postorder interval numbering.
#[derive(Debug, Clone, Default)]
pub struct Forest {
    nodes: Vec<Node>,
    first_root: Option<EntryId>,
    last_root: Option<EntryId>,
    free: Vec<u32>,
    len: usize,
    numbering_valid: bool,
}

impl Forest {
    /// An empty forest.
    pub fn new() -> Forest {
        Forest::default()
    }

    /// An empty forest with room for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Forest {
        Forest { nodes: Vec::with_capacity(capacity), ..Forest::default() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Upper bound (exclusive) on `EntryId::index` values ever handed out;
    /// side tables should size to this.
    pub fn slot_bound(&self) -> usize {
        self.nodes.len()
    }

    /// The dead-slot reuse stack, bottom first. [`Forest::alloc`]-backed
    /// insertions pop from the **end**, so a snapshot that wants later
    /// insertions to land on the same slots as the original forest must
    /// restore this sequence verbatim ([`Forest::from_slots`]).
    pub fn free_slots(&self) -> &[u32] {
        &self.free
    }

    /// Rebuilds a forest with an exact slot layout: `live` lists
    /// `(slot, parent_slot)` pairs in preorder (roots in order, each
    /// followed by its subtree), `free` is the dead-slot reuse stack
    /// (bottom first), and `slot_bound` is the arena size. The result is
    /// indistinguishable from the forest that produced the snapshot:
    /// same ids, same sibling order, and the same slots handed to future
    /// insertions.
    pub fn from_slots(
        slot_bound: usize,
        live: &[(u32, Option<u32>)],
        free: &[u32],
    ) -> Result<Forest, ForestError> {
        let invalid = |reason| ForestError::InvalidSnapshot { reason };
        if live.len() + free.len() != slot_bound {
            return Err(invalid("live + free slot counts must equal the slot bound"));
        }
        let mut forest = Forest {
            nodes: (0..slot_bound)
                .map(|_| {
                    let mut n = Node::detached();
                    n.alive = false;
                    n
                })
                .collect(),
            first_root: None,
            last_root: None,
            free: free.to_vec(),
            len: live.len(),
            numbering_valid: false,
        };
        for &(slot, parent) in live {
            let id = EntryId(slot);
            if id.index() >= slot_bound {
                return Err(invalid("live slot out of bound"));
            }
            if forest.nodes[id.index()].alive {
                return Err(invalid("duplicate live slot"));
            }
            forest.nodes[id.index()].alive = true;
            match parent {
                None => match forest.last_root {
                    Some(prev) => {
                        forest.nodes[prev.index()].next_sibling = Some(id);
                        forest.nodes[id.index()].prev_sibling = Some(prev);
                        forest.last_root = Some(id);
                    }
                    None => {
                        forest.first_root = Some(id);
                        forest.last_root = Some(id);
                    }
                },
                Some(p) => {
                    let parent = EntryId(p);
                    // Preorder guarantees the parent row came first.
                    if parent.index() >= slot_bound || !forest.nodes[parent.index()].alive {
                        return Err(invalid("parent slot is not alive (rows must be preorder)"));
                    }
                    forest.nodes[id.index()].parent = Some(parent);
                    match forest.nodes[parent.index()].last_child {
                        Some(prev) => {
                            forest.nodes[prev.index()].next_sibling = Some(id);
                            forest.nodes[id.index()].prev_sibling = Some(prev);
                        }
                        None => forest.nodes[parent.index()].first_child = Some(id),
                    }
                    forest.nodes[parent.index()].last_child = Some(id);
                }
            }
        }
        for &slot in free {
            if slot as usize >= slot_bound {
                return Err(invalid("free slot out of bound"));
            }
            if forest.nodes[slot as usize].alive {
                return Err(invalid("free slot collides with a live slot"));
            }
        }
        // live + free == bound and no free/live collision, so the free
        // list covers exactly the dead slots unless it repeats one.
        let mut seen = vec![false; slot_bound];
        for &slot in free {
            if std::mem::replace(&mut seen[slot as usize], true) {
                return Err(invalid("duplicate free slot"));
            }
        }
        Ok(forest)
    }

    /// Whether `id` refers to a live entry.
    pub fn contains(&self, id: EntryId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| n.alive)
    }

    fn node(&self, id: EntryId) -> Result<&Node, ForestError> {
        self.nodes.get(id.index()).filter(|n| n.alive).ok_or(ForestError::NoSuchEntry(id))
    }

    fn alloc(&mut self) -> EntryId {
        self.numbering_valid = false;
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = Node::detached();
            EntryId(slot)
        } else {
            let id = EntryId::from_index(self.nodes.len());
            self.nodes.push(Node::detached());
            id
        }
    }

    /// Creates a new root entry, appended after existing roots.
    pub fn add_root(&mut self) -> EntryId {
        let id = self.alloc();
        match self.last_root {
            Some(prev) => {
                self.nodes[prev.index()].next_sibling = Some(id);
                self.nodes[id.index()].prev_sibling = Some(prev);
            }
            None => self.first_root = Some(id),
        }
        self.last_root = Some(id);
        id
    }

    /// Creates a new child of `parent`, appended after its existing children.
    pub fn add_child(&mut self, parent: EntryId) -> Result<EntryId, ForestError> {
        self.node(parent)?;
        let id = self.alloc();
        let last = self.nodes[parent.index()].last_child;
        self.nodes[id.index()].parent = Some(parent);
        match last {
            Some(prev) => {
                self.nodes[prev.index()].next_sibling = Some(id);
                self.nodes[id.index()].prev_sibling = Some(prev);
            }
            None => self.nodes[parent.index()].first_child = Some(id),
        }
        self.nodes[parent.index()].last_child = Some(id);
        Ok(id)
    }

    fn unlink(&mut self, id: EntryId) {
        let (parent, prev, next) = {
            let n = &self.nodes[id.index()];
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        match prev {
            Some(p) => self.nodes[p.index()].next_sibling = next,
            None => match parent {
                Some(par) => self.nodes[par.index()].first_child = next,
                None => self.first_root = next,
            },
        }
        match next {
            Some(nx) => self.nodes[nx.index()].prev_sibling = prev,
            None => match parent {
                Some(par) => self.nodes[par.index()].last_child = prev,
                None => self.last_root = prev,
            },
        }
    }

    /// Removes a leaf entry. Fails if `id` has children — per LDAP, "a
    /// directory entry that has descendants cannot be deleted, unless all its
    /// descendants are first deleted" (§4.1).
    pub fn remove_leaf(&mut self, id: EntryId) -> Result<(), ForestError> {
        let node = self.node(id)?;
        if node.first_child.is_some() {
            return Err(ForestError::NotALeaf(id));
        }
        self.unlink(id);
        self.nodes[id.index()].alive = false;
        self.free.push(id.0);
        self.len -= 1;
        self.numbering_valid = false;
        Ok(())
    }

    /// Removes the whole subtree rooted at `id` (the paper's
    /// subtree-deletion granularity, §4.1) as a sequence of leaf deletions in
    /// post-order. Returns the removed ids, post-order (leaves first, `id`
    /// last).
    pub fn remove_subtree(&mut self, id: EntryId) -> Result<Vec<EntryId>, ForestError> {
        self.node(id)?;
        let order = self.postorder_of(id);
        for &e in &order {
            self.remove_leaf(e).expect("postorder guarantees leaves first");
        }
        Ok(order)
    }

    /// Moves the subtree rooted at `id` under `new_parent` (appended after
    /// its existing children) — the LDAP ModifyDN/"move" operation. Fails if
    /// either entry is dead or if `new_parent` is `id` itself or one of its
    /// descendants (which would detach the subtree into a cycle).
    pub fn move_subtree(&mut self, id: EntryId, new_parent: EntryId) -> Result<(), ForestError> {
        self.node(id)?;
        self.node(new_parent)?;
        if new_parent == id || self.is_ancestor(id, new_parent) {
            return Err(ForestError::MoveIntoSelf { moved: id, target: new_parent });
        }
        self.unlink(id);
        let n = &mut self.nodes[id.index()];
        n.parent = Some(new_parent);
        n.prev_sibling = None;
        n.next_sibling = None;
        let last = self.nodes[new_parent.index()].last_child;
        match last {
            Some(prev) => {
                self.nodes[prev.index()].next_sibling = Some(id);
                self.nodes[id.index()].prev_sibling = Some(prev);
            }
            None => self.nodes[new_parent.index()].first_child = Some(id),
        }
        self.nodes[new_parent.index()].last_child = Some(id);
        self.numbering_valid = false;
        Ok(())
    }

    /// Detaches the subtree rooted at `id`, making it a new forest root
    /// (appended after existing roots). The other half of ModifyDN.
    pub fn move_subtree_to_root(&mut self, id: EntryId) -> Result<(), ForestError> {
        self.node(id)?;
        if self.nodes[id.index()].parent.is_none() {
            return Ok(()); // already a root
        }
        self.unlink(id);
        let n = &mut self.nodes[id.index()];
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
        match self.last_root {
            Some(prev) => {
                self.nodes[prev.index()].next_sibling = Some(id);
                self.nodes[id.index()].prev_sibling = Some(prev);
            }
            None => self.first_root = Some(id),
        }
        self.last_root = Some(id);
        self.numbering_valid = false;
        Ok(())
    }

    /// The parent of `id`, or `None` for roots.
    pub fn parent(&self, id: EntryId) -> Option<EntryId> {
        self.node(id).ok().and_then(|n| n.parent)
    }

    /// Whether `id` is a live root.
    pub fn is_root(&self, id: EntryId) -> bool {
        self.node(id).is_ok_and(|n| n.parent.is_none())
    }

    /// Whether `id` is a live leaf.
    pub fn is_leaf(&self, id: EntryId) -> bool {
        self.node(id).is_ok_and(|n| n.first_child.is_none())
    }

    /// The roots, in insertion order.
    pub fn roots(&self) -> SiblingIter<'_> {
        SiblingIter { forest: self, next: self.first_root }
    }

    /// The children of `id`, in insertion order (empty if `id` is dead).
    pub fn children(&self, id: EntryId) -> SiblingIter<'_> {
        let next = self.node(id).ok().and_then(|n| n.first_child);
        SiblingIter { forest: self, next }
    }

    /// Number of children of `id`.
    pub fn child_count(&self, id: EntryId) -> usize {
        self.children(id).count()
    }

    /// Proper ancestors of `id`, nearest (parent) first.
    pub fn ancestors(&self, id: EntryId) -> AncestorIter<'_> {
        AncestorIter { forest: self, next: self.parent(id) }
    }

    /// Depth of `id`: 0 for roots.
    pub fn depth(&self, id: EntryId) -> usize {
        self.ancestors(id).count()
    }

    /// Proper descendants of `id` in preorder.
    pub fn descendants(&self, id: EntryId) -> PreorderIter<'_> {
        match self.node(id) {
            Ok(n) => PreorderIter { forest: self, next: n.first_child, stop: Some(id) },
            Err(_) => PreorderIter { forest: self, next: None, stop: None },
        }
    }

    /// All live entries in preorder (roots in insertion order, each followed
    /// by its subtree).
    pub fn iter(&self) -> PreorderIter<'_> {
        PreorderIter { forest: self, next: self.first_root, stop: None }
    }

    /// Entries of the subtree rooted at `id` in post-order (children before
    /// parents).
    pub fn postorder_of(&self, id: EntryId) -> Vec<EntryId> {
        let mut out = Vec::new();
        // Iterative postorder: push self in preorder, then reverse trick is
        // wrong for forests with sibling order; do explicit two-phase.
        let mut stack = vec![(id, false)];
        while let Some((e, expanded)) = stack.pop() {
            if expanded {
                out.push(e);
            } else {
                stack.push((e, true));
                let children: Vec<EntryId> = self.children(e).collect();
                for c in children.into_iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        out
    }

    /// Size of the subtree rooted at `id` (including `id`); 0 if dead.
    pub fn subtree_size(&self, id: EntryId) -> usize {
        if !self.contains(id) {
            return 0;
        }
        1 + self.descendants(id).count()
    }

    /// Link-chasing ancestor test: true iff `a` is a **proper** ancestor of
    /// `d`. O(depth(d)); always valid, independent of numbering.
    pub fn is_ancestor(&self, a: EntryId, d: EntryId) -> bool {
        if a == d || !self.contains(a) {
            return false;
        }
        self.ancestors(d).any(|x| x == a)
    }

    // ----- interval numbering -----

    /// Whether the `(pre, post)` numbering currently reflects the structure.
    pub fn is_numbered(&self) -> bool {
        self.numbering_valid
    }

    /// Recomputes the numbering if any structural change happened since the
    /// last call. O(n); no-op when clean.
    pub fn ensure_numbered(&mut self) {
        if self.numbering_valid {
            return;
        }
        let mut pre = 0u32;
        let mut post = 0u32;
        // Iterative DFS over the forest.
        let mut next = self.first_root;
        let mut stack: Vec<EntryId> = Vec::new();
        while let Some(id) = next {
            self.nodes[id.index()].pre = pre;
            pre += 1;
            if let Some(child) = self.nodes[id.index()].first_child {
                stack.push(id);
                next = Some(child);
            } else {
                self.nodes[id.index()].post = post;
                self.nodes[id.index()].end = pre - 1;
                post += 1;
                // Walk up until a next sibling exists.
                let mut cur = id;
                next = None;
                loop {
                    if let Some(sib) = self.nodes[cur.index()].next_sibling {
                        next = Some(sib);
                        break;
                    }
                    match stack.pop() {
                        Some(parent) => {
                            self.nodes[parent.index()].post = post;
                            self.nodes[parent.index()].end = pre - 1;
                            post += 1;
                            cur = parent;
                        }
                        None => break,
                    }
                }
            }
        }
        self.numbering_valid = true;
    }

    /// Preorder rank of `id`.
    ///
    /// # Panics
    /// If the numbering is stale (call [`ensure_numbered`](Self::ensure_numbered)
    /// first) or `id` is dead.
    pub fn pre(&self, id: EntryId) -> u32 {
        assert!(self.numbering_valid, "forest numbering is stale; call ensure_numbered()");
        debug_assert!(self.contains(id));
        self.nodes[id.index()].pre
    }

    /// Postorder rank of `id`. Same preconditions as [`pre`](Self::pre).
    pub fn post(&self, id: EntryId) -> u32 {
        assert!(self.numbering_valid, "forest numbering is stale; call ensure_numbered()");
        debug_assert!(self.contains(id));
        self.nodes[id.index()].post
    }

    /// Maximum preorder rank within `id`'s subtree. Same preconditions as
    /// [`pre`](Self::pre). `a` properly contains `d` iff
    /// `pre(a) < pre(d) && pre(d) <= end(a)` — the single-coordinate
    /// containment test the `bschema-query` merge joins use.
    pub fn end(&self, id: EntryId) -> u32 {
        assert!(self.numbering_valid, "forest numbering is stale; call ensure_numbered()");
        debug_assert!(self.contains(id));
        self.nodes[id.index()].end
    }

    /// Interval-based proper-ancestor test; requires fresh numbering.
    /// O(1) — this is what makes the §3.2 merge joins linear.
    pub fn interval_is_ancestor(&self, a: EntryId, d: EntryId) -> bool {
        let pa = self.pre(a);
        let pd = self.pre(d);
        pa < pd && pd <= self.end(a)
    }
}

/// Iterator over a sibling chain.
#[derive(Debug, Clone)]
pub struct SiblingIter<'f> {
    forest: &'f Forest,
    next: Option<EntryId>,
}

impl Iterator for SiblingIter<'_> {
    type Item = EntryId;
    fn next(&mut self) -> Option<EntryId> {
        let id = self.next?;
        self.next = self.forest.nodes[id.index()].next_sibling;
        Some(id)
    }
}

/// Iterator over proper ancestors, nearest first.
#[derive(Debug, Clone)]
pub struct AncestorIter<'f> {
    forest: &'f Forest,
    next: Option<EntryId>,
}

impl Iterator for AncestorIter<'_> {
    type Item = EntryId;
    fn next(&mut self) -> Option<EntryId> {
        let id = self.next?;
        self.next = self.forest.nodes[id.index()].parent;
        Some(id)
    }
}

/// Preorder iterator, optionally confined to the subtree under `stop`.
#[derive(Debug, Clone)]
pub struct PreorderIter<'f> {
    forest: &'f Forest,
    next: Option<EntryId>,
    /// When `Some(root)`, iteration stays strictly inside `root`'s subtree.
    stop: Option<EntryId>,
}

impl Iterator for PreorderIter<'_> {
    type Item = EntryId;
    fn next(&mut self) -> Option<EntryId> {
        let id = self.next?;
        let nodes = &self.forest.nodes;
        // Compute successor in preorder.
        self.next = if let Some(child) = nodes[id.index()].first_child {
            Some(child)
        } else {
            let mut cur = id;
            loop {
                if Some(cur) == self.stop {
                    break None;
                }
                if let Some(sib) = nodes[cur.index()].next_sibling {
                    break Some(sib);
                }
                match nodes[cur.index()].parent {
                    Some(p) if Some(p) != self.stop => cur = p,
                    _ => break None,
                }
            }
        };
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure 1 shape:
    /// att ── attLabs ── { armstrong, databases ── { laks, suciu } }
    fn figure1_shape() -> (Forest, [EntryId; 6]) {
        let mut f = Forest::new();
        let att = f.add_root();
        let labs = f.add_child(att).unwrap();
        let armstrong = f.add_child(labs).unwrap();
        let db = f.add_child(labs).unwrap();
        let laks = f.add_child(db).unwrap();
        let suciu = f.add_child(db).unwrap();
        (f, [att, labs, armstrong, db, laks, suciu])
    }

    #[test]
    fn build_and_navigate() {
        let (f, [att, labs, armstrong, db, laks, suciu]) = figure1_shape();
        assert_eq!(f.len(), 6);
        assert_eq!(f.parent(laks), Some(db));
        assert_eq!(f.parent(att), None);
        assert!(f.is_root(att));
        assert!(f.is_leaf(suciu));
        assert!(!f.is_leaf(db));
        assert_eq!(f.children(labs).collect::<Vec<_>>(), [armstrong, db]);
        assert_eq!(f.ancestors(laks).collect::<Vec<_>>(), [db, labs, att]);
        assert_eq!(f.depth(laks), 3);
        assert_eq!(f.depth(att), 0);
        assert_eq!(f.subtree_size(labs), 5);
        assert_eq!(f.child_count(db), 2);
    }

    #[test]
    fn preorder_iteration() {
        let (f, [att, labs, armstrong, db, laks, suciu]) = figure1_shape();
        assert_eq!(f.iter().collect::<Vec<_>>(), [att, labs, armstrong, db, laks, suciu]);
        assert_eq!(f.descendants(labs).collect::<Vec<_>>(), [armstrong, db, laks, suciu]);
        assert_eq!(f.descendants(suciu).count(), 0);
    }

    #[test]
    fn multiple_roots_iterate_in_order() {
        let mut f = Forest::new();
        let r1 = f.add_root();
        let r2 = f.add_root();
        let c1 = f.add_child(r1).unwrap();
        assert_eq!(f.roots().collect::<Vec<_>>(), [r1, r2]);
        assert_eq!(f.iter().collect::<Vec<_>>(), [r1, c1, r2]);
    }

    #[test]
    fn ancestor_tests_agree() {
        let (mut f, ids) = figure1_shape();
        f.ensure_numbered();
        for &a in &ids {
            for &d in &ids {
                assert_eq!(
                    f.is_ancestor(a, d),
                    f.interval_is_ancestor(a, d),
                    "mismatch for {a} -> {d}"
                );
            }
        }
    }

    #[test]
    fn numbering_is_pre_post() {
        let (mut f, [att, labs, _, db, laks, _]) = figure1_shape();
        f.ensure_numbered();
        assert_eq!(f.pre(att), 0);
        assert!(f.pre(labs) < f.pre(db));
        assert!(f.post(laks) < f.post(db));
        assert!(f.interval_is_ancestor(att, laks));
        assert!(!f.interval_is_ancestor(laks, att));
        assert!(!f.interval_is_ancestor(att, att));
    }

    #[test]
    fn end_is_max_preorder_in_subtree() {
        let (mut f, [att, labs, armstrong, db, laks, suciu]) = figure1_shape();
        f.ensure_numbered();
        // Subtree of att covers all 6 nodes: pre 0..=5.
        assert_eq!(f.end(att), 5);
        assert_eq!(f.end(labs), 5);
        assert_eq!(f.end(armstrong), f.pre(armstrong)); // leaf
        assert_eq!(f.end(db), 5);
        assert_eq!(f.end(laks), f.pre(laks));
        assert_eq!(f.end(suciu), f.pre(suciu));
        // Containment in the preorder coordinate space matches ancestry.
        for &a in &[att, labs, armstrong, db, laks, suciu] {
            for &d in &[att, labs, armstrong, db, laks, suciu] {
                let by_interval = f.pre(a) < f.pre(d) && f.pre(d) <= f.end(a);
                assert_eq!(by_interval, f.is_ancestor(a, d));
            }
        }
    }

    #[test]
    fn remove_leaf_enforces_leaf_only() {
        let (mut f, [_, labs, armstrong, ..]) = figure1_shape();
        assert_eq!(f.remove_leaf(labs), Err(ForestError::NotALeaf(labs)));
        f.remove_leaf(armstrong).unwrap();
        assert!(!f.contains(armstrong));
        assert_eq!(f.len(), 5);
        assert_eq!(f.remove_leaf(armstrong), Err(ForestError::NoSuchEntry(armstrong)));
    }

    #[test]
    fn remove_subtree_is_postorder() {
        let (mut f, [att, labs, armstrong, db, laks, suciu]) = figure1_shape();
        let removed = f.remove_subtree(labs).unwrap();
        assert_eq!(removed, [armstrong, laks, suciu, db, labs]);
        assert_eq!(f.len(), 1);
        assert!(f.contains(att));
        assert!(f.is_leaf(att));
    }

    #[test]
    fn move_subtree_relocates_whole_subtree() {
        let (mut f, [att, labs, armstrong, db, laks, suciu]) = figure1_shape();
        // Move databases (with laks, suciu) directly under att.
        f.move_subtree(db, att).unwrap();
        assert_eq!(f.parent(db), Some(att));
        assert_eq!(f.parent(laks), Some(db));
        assert_eq!(f.children(att).collect::<Vec<_>>(), [labs, db]);
        assert_eq!(f.children(labs).collect::<Vec<_>>(), [armstrong]);
        assert_eq!(f.len(), 6);
        f.ensure_numbered();
        assert!(f.interval_is_ancestor(att, suciu));
        assert!(!f.interval_is_ancestor(labs, suciu));
    }

    #[test]
    fn move_into_own_subtree_is_rejected() {
        let (mut f, [_, labs, _, db, laks, _]) = figure1_shape();
        assert_eq!(
            f.move_subtree(labs, laks),
            Err(ForestError::MoveIntoSelf { moved: labs, target: laks })
        );
        assert_eq!(
            f.move_subtree(db, db),
            Err(ForestError::MoveIntoSelf { moved: db, target: db })
        );
        // Structure unchanged after rejections.
        assert_eq!(f.parent(laks), Some(db));
    }

    #[test]
    fn move_subtree_to_root_detaches() {
        let (mut f, [att, labs, _, db, laks, _]) = figure1_shape();
        f.move_subtree_to_root(db).unwrap();
        assert_eq!(f.parent(db), None);
        assert!(f.is_root(db));
        assert_eq!(f.roots().collect::<Vec<_>>(), [att, db]);
        assert_eq!(f.parent(laks), Some(db));
        assert_eq!(f.children(labs).count(), 1);
        // Idempotent on roots.
        f.move_subtree_to_root(db).unwrap();
        assert_eq!(f.roots().count(), 2);
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut f = Forest::new();
        let r = f.add_root();
        let c = f.add_child(r).unwrap();
        f.remove_leaf(c).unwrap();
        let c2 = f.add_child(r).unwrap();
        assert_eq!(c2.index(), c.index(), "slot should be reused");
        assert!(f.contains(c2));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn removing_middle_sibling_relinks() {
        let mut f = Forest::new();
        let r = f.add_root();
        let a = f.add_child(r).unwrap();
        let b = f.add_child(r).unwrap();
        let c = f.add_child(r).unwrap();
        f.remove_leaf(b).unwrap();
        assert_eq!(f.children(r).collect::<Vec<_>>(), [a, c]);
        let d = f.add_child(r).unwrap();
        assert_eq!(f.children(r).collect::<Vec<_>>(), [a, c, d]);
    }

    #[test]
    fn numbering_refreshes_after_update() {
        let (mut f, [att, .., suciu]) = figure1_shape();
        f.ensure_numbered();
        assert!(f.is_numbered());
        let extra = f.add_child(suciu).unwrap();
        assert!(!f.is_numbered());
        f.ensure_numbered();
        assert!(f.interval_is_ancestor(att, extra));
    }

    #[test]
    #[should_panic(expected = "numbering is stale")]
    fn stale_numbering_panics() {
        let mut f = Forest::new();
        let r = f.add_root();
        let _ = f.pre(r);
    }

    #[test]
    fn empty_forest() {
        let f = Forest::new();
        assert!(f.is_empty());
        assert_eq!(f.iter().count(), 0);
        assert_eq!(f.roots().count(), 0);
    }

    #[test]
    fn add_child_of_dead_parent_fails() {
        let mut f = Forest::new();
        let r = f.add_root();
        f.remove_leaf(r).unwrap();
        assert_eq!(f.add_child(r), Err(ForestError::NoSuchEntry(r)));
    }

    #[test]
    fn deep_chain_numbering() {
        // Exercise the iterative DFS on a deep path (would overflow a
        // recursive implementation's stack at much larger sizes).
        let mut f = Forest::new();
        let mut cur = f.add_root();
        let root = cur;
        for _ in 0..10_000 {
            cur = f.add_child(cur).unwrap();
        }
        f.ensure_numbered();
        assert!(f.interval_is_ancestor(root, cur));
        assert_eq!(f.pre(root), 0);
        assert_eq!(f.post(root), 10_000);
        assert_eq!(f.depth(cur), 10_000);
    }

    #[test]
    fn postorder_of_single_node() {
        let mut f = Forest::new();
        let r = f.add_root();
        assert_eq!(f.postorder_of(r), [r]);
    }

    /// Snapshot `f` through the slot-exact API and rebuild it.
    fn snapshot_roundtrip(f: &Forest) -> Forest {
        let live: Vec<(u32, Option<u32>)> = f
            .iter()
            .map(|id| (id.index() as u32, f.parent(id).map(|p| p.index() as u32)))
            .collect();
        Forest::from_slots(f.slot_bound(), &live, f.free_slots()).expect("valid snapshot")
    }

    #[test]
    fn from_slots_reproduces_structure_and_slot_reuse() {
        let (mut f, [att, labs, armstrong, db, laks, _suciu]) = figure1_shape();
        // Punch holes so the free stack is non-trivial and ordered.
        f.remove_leaf(armstrong).unwrap();
        f.remove_leaf(laks).unwrap();
        assert_eq!(f.free_slots(), [armstrong.index() as u32, laks.index() as u32]);

        let mut restored = snapshot_roundtrip(&f);
        assert_eq!(restored.len(), f.len());
        assert_eq!(restored.slot_bound(), f.slot_bound());
        assert_eq!(restored.free_slots(), f.free_slots());
        assert_eq!(
            restored.iter().collect::<Vec<_>>(),
            f.iter().collect::<Vec<_>>(),
            "preorder (ids and order) must match"
        );
        // Future insertions land on the same slots in both forests.
        let a = f.add_child(db).unwrap();
        let b = restored.add_child(db).unwrap();
        assert_eq!(a, b, "first reused slot must match");
        let a2 = f.add_child(att).unwrap();
        let b2 = restored.add_child(att).unwrap();
        assert_eq!(a2, b2, "second reused slot must match");
        assert_eq!(
            f.children(labs).collect::<Vec<_>>(),
            restored.children(labs).collect::<Vec<_>>()
        );
    }

    #[test]
    fn from_slots_rejects_inconsistent_snapshots() {
        let bad = |bound, live: &[(u32, Option<u32>)], free: &[u32]| {
            assert!(
                matches!(
                    Forest::from_slots(bound, live, free),
                    Err(ForestError::InvalidSnapshot { .. })
                ),
                "bound={bound} live={live:?} free={free:?} should be rejected"
            );
        };
        bad(1, &[(0, None), (1, Some(0))], &[]); // slot out of bound
        bad(2, &[(0, None), (0, Some(0))], &[]); // duplicate live slot
        bad(2, &[(1, Some(0)), (0, None)], &[]); // child before parent
        bad(2, &[(0, None)], &[0]); // free collides with live
        bad(3, &[(0, None)], &[1, 1]); // duplicate free slot
        bad(3, &[(0, None)], &[1]); // counts do not cover the bound
                                    // A valid snapshot for contrast.
        assert!(Forest::from_slots(3, &[(0, None), (2, Some(0))], &[1]).is_ok());
    }
}
