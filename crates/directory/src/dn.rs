//! Distinguished names (RFC 2253 subset).
//!
//! The paper notes (§2.1, footnote 1) that every LDAP entry carries a
//! distinguished name and that the set of DNs *induces* the forest structure;
//! the paper then abstracts DNs away. We keep them: they are how real
//! directory content (LDIF) names entries, and [`crate::instance`] uses them
//! to build the forest the paper's algorithms run on.
//!
//! A DN is a sequence of relative distinguished names (RDNs), *leaf first*:
//! `uid=laks,ou=databases,ou=attLabs,o=att` names an entry whose parent is
//! `ou=databases,ou=attLabs,o=att`. An RDN is one or more
//! `attribute=value` pairs joined with `+`.

use std::fmt;

/// One `attribute=value` component of an RDN.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ava {
    /// Attribute name, stored lowercase (attribute names are
    /// case-insensitive in LDAP).
    attr: String,
    /// Raw (unescaped) attribute value, original case preserved.
    value: String,
}

impl Ava {
    /// Builds an attribute-value assertion; the attribute name is folded to
    /// lowercase.
    pub fn new(attr: impl Into<String>, value: impl Into<String>) -> Self {
        Ava { attr: attr.into().to_ascii_lowercase(), value: value.into() }
    }

    /// Lowercased attribute name.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// Unescaped value, original case.
    pub fn value(&self) -> &str {
        &self.value
    }

    fn normalized_value(&self) -> String {
        crate::syntax::normalize_case_ignore(&self.value)
    }
}

/// A relative distinguished name: one or more AVAs (usually exactly one).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rdn {
    /// AVAs sorted by (attr, normalized value) so logically-equal RDNs
    /// compare equal regardless of the order they were written in.
    avas: Vec<Ava>,
}

impl Rdn {
    /// Single-AVA RDN, the common case: `Rdn::single("uid", "laks")`.
    pub fn single(attr: impl Into<String>, value: impl Into<String>) -> Self {
        Rdn { avas: vec![Ava::new(attr, value)] }
    }

    /// Multi-valued RDN from AVAs; they are canonically sorted.
    pub fn new(mut avas: Vec<Ava>) -> Result<Self, DnParseError> {
        if avas.is_empty() {
            return Err(DnParseError::EmptyRdn);
        }
        avas.sort_by(|a, b| {
            a.attr.cmp(&b.attr).then_with(|| a.normalized_value().cmp(&b.normalized_value()))
        });
        Ok(Rdn { avas })
    }

    /// The AVAs of this RDN, in canonical order.
    pub fn avas(&self) -> &[Ava] {
        &self.avas
    }

    /// Case/whitespace-insensitive equality used for tree navigation:
    /// `uid=Laks` and `uid=laks` name the same child.
    pub fn matches(&self, other: &Rdn) -> bool {
        self.avas.len() == other.avas.len()
            && self
                .avas
                .iter()
                .zip(&other.avas)
                .all(|(a, b)| a.attr == b.attr && a.normalized_value() == b.normalized_value())
    }

    fn normalized_string(&self) -> String {
        let mut out = String::new();
        for (i, ava) in self.avas.iter().enumerate() {
            if i > 0 {
                out.push('+');
            }
            out.push_str(&ava.attr);
            out.push('=');
            push_escaped(&mut out, &ava.normalized_value());
        }
        out
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ava) in self.avas.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            let mut escaped = String::new();
            push_escaped(&mut escaped, &ava.value);
            write!(f, "{}={}", ava.attr, escaped)?;
        }
        Ok(())
    }
}

/// A distinguished name: RDNs ordered leaf-first per RFC 2253. The empty DN
/// (zero RDNs) denotes the conceptual root above all forest roots.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Dn {
    rdns: Vec<Rdn>,
}

/// Errors from [`Dn::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnParseError {
    /// An RDN had no AVAs (e.g. `uid=laks,,o=att`).
    EmptyRdn,
    /// An AVA lacked an `=` separator.
    MissingEquals(String),
    /// An AVA's attribute name was empty.
    EmptyAttribute,
    /// A backslash escape was truncated or invalid.
    BadEscape(usize),
    /// A character that must be escaped appeared bare.
    UnescapedSpecial {
        /// Byte offset of the offending character.
        position: usize,
        /// The offending character.
        ch: char,
    },
}

impl fmt::Display for DnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnParseError::EmptyRdn => write!(f, "empty RDN component"),
            DnParseError::MissingEquals(s) => write!(f, "RDN component {s:?} missing '='"),
            DnParseError::EmptyAttribute => write!(f, "empty attribute name in RDN"),
            DnParseError::BadEscape(pos) => write!(f, "bad escape sequence at byte {pos}"),
            DnParseError::UnescapedSpecial { position, ch } => {
                write!(f, "unescaped special character {ch:?} at byte {position}")
            }
        }
    }
}

impl std::error::Error for DnParseError {}

impl Dn {
    /// The empty DN (conceptual super-root).
    pub fn root() -> Dn {
        Dn::default()
    }

    /// Builds a DN from leaf-first RDNs.
    pub fn from_rdns(rdns: Vec<Rdn>) -> Dn {
        Dn { rdns }
    }

    /// Parses an RFC 2253 string such as
    /// `uid=laks,ou=databases,ou=attLabs,o=att`. Supports backslash escapes
    /// (`\,`, `\+`, `\\`, `\=`, hex pairs `\2C`) and multi-valued RDNs with
    /// `+`. The empty string parses to the empty DN.
    pub fn parse(s: &str) -> Result<Dn, DnParseError> {
        if s.is_empty() {
            return Ok(Dn::root());
        }
        let mut rdns = Vec::new();
        for raw_rdn in split_unescaped(s, ',') {
            if raw_rdn.trim().is_empty() {
                return Err(DnParseError::EmptyRdn);
            }
            let mut avas = Vec::new();
            for raw_ava in split_unescaped(raw_rdn, '+') {
                // Only trim the left side here: a trailing space may be an
                // escaped value character; `trim_value` below handles the
                // right side escape-awarely.
                let raw_ava = raw_ava.trim_start();
                let eq = find_unescaped(raw_ava, '=')
                    .ok_or_else(|| DnParseError::MissingEquals(raw_ava.to_owned()))?;
                let attr = raw_ava[..eq].trim();
                if attr.is_empty() {
                    return Err(DnParseError::EmptyAttribute);
                }
                let value = unescape(trim_value(&raw_ava[eq + 1..]))?;
                avas.push(Ava::new(attr, value));
            }
            rdns.push(Rdn::new(avas)?);
        }
        Ok(Dn { rdns })
    }

    /// Leaf-first RDNs.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// The leaf (first) RDN, or `None` for the empty DN.
    pub fn rdn(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// Number of RDN components (the entry's depth below the super-root).
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// True for the empty DN.
    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    /// The parent DN (drops the leaf RDN); `None` if this is the empty DN.
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn { rdns: self.rdns[1..].to_vec() })
        }
    }

    /// Builds the DN of a child: `child_rdn` prepended to `self`.
    pub fn child(&self, rdn: Rdn) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(rdn);
        rdns.extend_from_slice(&self.rdns);
        Dn { rdns }
    }

    /// True iff `self` is an ancestor of `other` (proper: not equal), under
    /// case-insensitive RDN matching.
    pub fn is_ancestor_of(&self, other: &Dn) -> bool {
        let (n, m) = (self.rdns.len(), other.rdns.len());
        if n >= m {
            return false;
        }
        // self's RDNs must equal the last n RDNs of other.
        self.rdns.iter().zip(&other.rdns[m - n..]).all(|(a, b)| a.matches(b))
    }

    /// Case-insensitive DN equivalence (RFC 4517 `distinguishedNameMatch`).
    pub fn matches(&self, other: &Dn) -> bool {
        self.rdns.len() == other.rdns.len()
            && self.rdns.iter().zip(&other.rdns).all(|(a, b)| a.matches(b))
    }

    /// Canonical lowercase, whitespace-collapsed form; equal iff
    /// [`matches`](Dn::matches).
    pub fn to_normalized_string(&self) -> String {
        let mut out = String::new();
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&rdn.normalized_string());
        }
        out
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{rdn}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Dn {
    type Err = DnParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Dn::parse(s)
    }
}

/// Splits on `sep` occurrences not preceded by a backslash.
fn split_unescaped(s: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut escaped = false;
    for (i, ch) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if ch == '\\' {
            escaped = true;
        } else if ch == sep {
            parts.push(&s[start..i]);
            start = i + ch.len_utf8();
        }
    }
    parts.push(&s[start..]);
    parts
}

fn find_unescaped(s: &str, target: char) -> Option<usize> {
    let mut escaped = false;
    for (i, ch) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if ch == '\\' {
            escaped = true;
        } else if ch == target {
            return Some(i);
        }
    }
    None
}

/// Trims unescaped surrounding whitespace from an attribute value. A
/// trailing space preceded by an odd number of backslashes is escaped
/// (RFC 2253 `\ `) and must be kept.
fn trim_value(s: &str) -> &str {
    let mut v = s.trim_start();
    while let Some(stripped) = v.strip_suffix(' ') {
        let backslashes = stripped.len() - stripped.trim_end_matches('\\').len();
        if backslashes % 2 == 1 {
            break; // the space is escaped
        }
        v = stripped;
    }
    v
}

fn unescape(s: &str) -> Result<String, DnParseError> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < s.len() {
        let ch = s[i..].chars().next().expect("in-bounds char");
        if ch == '\\' {
            let rest = &s[i + 1..];
            let next = rest.chars().next().ok_or(DnParseError::BadEscape(i))?;
            match next {
                ',' | '+' | '"' | '\\' | '<' | '>' | ';' | '=' | ' ' | '#' => {
                    out.push(next);
                    i += 1 + next.len_utf8();
                }
                c if c.is_ascii_hexdigit() => {
                    if i + 2 >= s.len() || !bytes[i + 2].is_ascii_hexdigit() {
                        return Err(DnParseError::BadEscape(i));
                    }
                    let byte = u8::from_str_radix(&s[i + 1..i + 3], 16)
                        .map_err(|_| DnParseError::BadEscape(i))?;
                    out.push(byte as char);
                    i += 3;
                }
                _ => return Err(DnParseError::BadEscape(i)),
            }
        } else if matches!(ch, ',' | '+' | '<' | '>' | ';' | '"') {
            return Err(DnParseError::UnescapedSpecial { position: i, ch });
        } else {
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Ok(out)
}

fn push_escaped(out: &mut String, value: &str) {
    let last = value.chars().count().saturating_sub(1);
    for (i, ch) in value.chars().enumerate() {
        let needs_escape = matches!(ch, ',' | '+' | '"' | '\\' | '<' | '>' | ';' | '=')
            || (i == 0 && matches!(ch, ' ' | '#'))
            || (i == last && ch == ' ');
        if needs_escape {
            out.push('\\');
        }
        out.push(ch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_dn() {
        let dn = Dn::parse("uid=laks,ou=databases,ou=attLabs,o=att").unwrap();
        assert_eq!(dn.depth(), 4);
        assert_eq!(dn.rdn().unwrap().avas()[0].attr(), "uid");
        assert_eq!(dn.rdn().unwrap().avas()[0].value(), "laks");
        assert_eq!(dn.to_string(), "uid=laks,ou=databases,ou=attLabs,o=att");
    }

    #[test]
    fn empty_dn_is_root() {
        let dn = Dn::parse("").unwrap();
        assert!(dn.is_root());
        assert_eq!(dn.depth(), 0);
        assert_eq!(dn.parent(), None);
    }

    #[test]
    fn parent_and_child() {
        let dn = Dn::parse("uid=laks,o=att").unwrap();
        let parent = dn.parent().unwrap();
        assert_eq!(parent.to_string(), "o=att");
        assert!(parent.is_ancestor_of(&dn));
        assert!(!dn.is_ancestor_of(&parent));
        assert_eq!(parent.child(Rdn::single("uid", "laks")), dn);
    }

    #[test]
    fn ancestor_is_proper() {
        let dn = Dn::parse("o=att").unwrap();
        assert!(!dn.is_ancestor_of(&dn));
        assert!(Dn::root().is_ancestor_of(&dn));
    }

    #[test]
    fn matching_is_case_insensitive() {
        let a = Dn::parse("UID=Laks,O=ATT").unwrap();
        let b = Dn::parse("uid=laks,o=att").unwrap();
        assert!(a.matches(&b));
        assert_eq!(a.to_normalized_string(), b.to_normalized_string());
    }

    #[test]
    fn escaped_comma_in_value() {
        let dn = Dn::parse(r"cn=Lakshmanan\, Laks,o=att").unwrap();
        assert_eq!(dn.depth(), 2);
        assert_eq!(dn.rdn().unwrap().avas()[0].value(), "Lakshmanan, Laks");
        // Display re-escapes.
        let rendered = dn.to_string();
        assert_eq!(Dn::parse(&rendered).unwrap(), dn);
    }

    #[test]
    fn hex_escape() {
        let dn = Dn::parse(r"cn=a\2Cb,o=att").unwrap();
        assert_eq!(dn.rdn().unwrap().avas()[0].value(), "a,b");
    }

    #[test]
    fn multivalued_rdn_order_insensitive() {
        let a = Dn::parse("cn=x+uid=1,o=att").unwrap();
        let b = Dn::parse("uid=1+cn=x,o=att").unwrap();
        assert_eq!(a, b);
        assert!(a.matches(&b));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(Dn::parse("uid=laks,,o=att"), Err(DnParseError::EmptyRdn)));
        assert!(matches!(Dn::parse("laks,o=att"), Err(DnParseError::MissingEquals(_))));
        assert!(matches!(Dn::parse("=laks"), Err(DnParseError::EmptyAttribute)));
        assert!(matches!(Dn::parse(r"cn=x\"), Err(DnParseError::BadEscape(_))));
        assert!(matches!(Dn::parse(r"cn=x\q,o=a"), Err(DnParseError::BadEscape(_))));
    }

    #[test]
    fn is_ancestor_requires_suffix_match() {
        let org = Dn::parse("o=att").unwrap();
        let other = Dn::parse("uid=laks,o=ibm").unwrap();
        assert!(!org.is_ancestor_of(&other));
        let deep = Dn::parse("uid=laks,ou=db,o=att").unwrap();
        assert!(org.is_ancestor_of(&deep));
        let mid = Dn::parse("ou=db,o=att").unwrap();
        assert!(mid.is_ancestor_of(&deep));
        assert!(!Dn::parse("ou=db").unwrap().is_ancestor_of(&deep));
    }
}
