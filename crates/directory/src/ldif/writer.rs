//! LDIF serialisation: instance → text, parents before children.

use std::fmt::Write as _;

use super::base64;
use crate::entry::Entry;
use crate::instance::{DirectoryInstance, InstanceError};

/// True when a value is representable on a plain `attr: value` line; RFC 2849
/// requires base64 when the value starts with space/colon/`<`, or contains
/// NUL/CR/LF or non-ASCII bytes.
fn is_safe(value: &str) -> bool {
    if value.is_empty() {
        return true;
    }
    let first = value.as_bytes()[0];
    if matches!(first, b' ' | b':' | b'<') {
        return false;
    }
    value.bytes().all(|b| b != 0 && b != b'\r' && b != b'\n' && b < 0x80)
}

/// Appends one attribute line, folding long lines at 76 columns.
fn push_line(out: &mut String, attr: &str, value: &str) {
    let line = if is_safe(value) {
        format!("{attr}: {value}")
    } else {
        format!("{attr}:: {}", base64::encode(value.as_bytes()))
    };
    let mut chars: Vec<char> = line.chars().collect();
    let mut first = true;
    while !chars.is_empty() {
        let width = if first { 76 } else { 75 };
        let take = chars.len().min(width);
        if !first {
            out.push(' ');
        }
        out.extend(chars.drain(..take));
        out.push('\n');
        first = false;
    }
}

/// Writes a single record (a `dn:` line plus the entry's attributes).
pub fn write_record(out: &mut String, dn: &str, entry: &Entry) {
    push_line(out, "dn", dn);
    // objectClass values first, per convention.
    for class in entry.classes() {
        push_line(out, "objectClass", class);
    }
    for (attr, values) in entry.attributes() {
        if attr == crate::attribute::OBJECT_CLASS {
            continue;
        }
        for value in values {
            push_line(out, attr, value);
        }
    }
    out.push('\n');
}

/// Serialises the whole instance in preorder. Fails if any entry is unnamed.
pub fn write_ldif(instance: &DirectoryInstance) -> Result<String, InstanceError> {
    let mut out = String::new();
    let _ = writeln!(out, "version: 1");
    out.push('\n');
    for (id, entry) in instance.iter() {
        let dn = instance.dn(id)?;
        write_record(&mut out, &dn.to_string(), entry);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Rdn;
    use crate::entry::Entry;
    use crate::instance::DirectoryInstance;
    use crate::ldif::load;

    fn sample_instance() -> DirectoryInstance {
        let mut d = DirectoryInstance::white_pages();
        let org = d
            .add_named_root(
                Rdn::single("o", "att"),
                Entry::builder().class("organization").class("top").attr("o", "att").build(),
            )
            .unwrap();
        let labs = d
            .add_named_child(
                org,
                Rdn::single("ou", "attLabs"),
                Entry::builder().class("orgUnit").class("top").attr("ou", "attLabs").build(),
            )
            .unwrap();
        d.add_named_child(
            labs,
            Rdn::single("uid", "laks"),
            Entry::builder()
                .class("person")
                .class("top")
                .attr("uid", "laks")
                .attr("name", "laks lakshmanan")
                .build(),
        )
        .unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let d = sample_instance();
        let text = write_ldif(&d).unwrap();
        let d2 = load(&text).unwrap();
        assert_eq!(d2.len(), 3);
        let laks = d2
            .lookup_dn(&"uid=laks,ou=attLabs,o=att".parse().unwrap())
            .expect("laks present after roundtrip");
        assert_eq!(d2.entry(laks).unwrap().first_value("name"), Some("laks lakshmanan"));
        assert_eq!(d2.forest().depth(laks), 2);
    }

    #[test]
    fn unsafe_values_use_base64() {
        let mut out = String::new();
        let e = Entry::builder().class("top").attr("description", " leading space").build();
        write_record(&mut out, "o=att", &e);
        assert!(out.contains("description:: "), "got: {out}");
        let e2 = Entry::builder().class("top").attr("description", "ünïcode").build();
        let mut out2 = String::new();
        write_record(&mut out2, "o=att", &e2);
        assert!(out2.contains("description:: "));
    }

    #[test]
    fn long_lines_fold_and_unfold() {
        let long = "x".repeat(300);
        let mut d = DirectoryInstance::default();
        d.add_named_root(
            Rdn::single("o", "att"),
            Entry::builder().class("top").attr("description", long.clone()).build(),
        )
        .unwrap();
        let text = write_ldif(&d).unwrap();
        assert!(text.lines().all(|l| l.chars().count() <= 76));
        let d2 = load(&text).unwrap();
        let id = d2.lookup_dn(&"o=att".parse().unwrap()).unwrap();
        assert_eq!(d2.entry(id).unwrap().first_value("description"), Some(long.as_str()));
    }

    #[test]
    fn object_class_lines_come_first() {
        let mut out = String::new();
        let e = Entry::builder().class("person").attr("uid", "x").build();
        write_record(&mut out, "uid=x", &e);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "dn: uid=x");
        assert_eq!(lines[1], "objectClass: person");
        assert_eq!(lines[2], "uid: x");
    }
}
