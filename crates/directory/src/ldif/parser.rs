//! LDIF record parser (RFC 2849 subset).

use std::fmt;

use super::base64;
use crate::dn::{Dn, DnParseError};
use crate::entry::Entry;

/// One parsed LDIF record: a DN plus the entry content.
#[derive(Debug, Clone)]
pub struct LdifRecord {
    /// The record's distinguished name.
    pub dn: Dn,
    /// The record's attributes (including `objectClass`).
    pub entry: Entry,
    /// 1-based line number where the record started (for diagnostics).
    pub line: usize,
}

/// Errors from LDIF parsing or loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LdifError {
    /// A record did not start with a `dn:` line.
    MissingDn {
        /// Line where the record started.
        line: usize,
    },
    /// A record contained a second `dn:` line.
    DuplicateDn {
        /// Line of the second `dn:`.
        line: usize,
    },
    /// A line had no `:` separator.
    MissingColon {
        /// The offending line number.
        line: usize,
        /// The line's content.
        content: String,
    },
    /// The DN failed to parse.
    BadDn {
        /// The offending line number.
        line: usize,
        /// Underlying DN error.
        source: DnParseError,
    },
    /// A record's DN was empty.
    EmptyDn {
        /// Line where the record started.
        line: usize,
    },
    /// A base64 value failed to decode, or decoded to invalid UTF-8.
    BadBase64 {
        /// The offending line number.
        line: usize,
        /// Description of the failure.
        reason: String,
    },
    /// A continuation line appeared with nothing to continue.
    DanglingContinuation {
        /// The offending line number.
        line: usize,
    },
    /// Loading into an instance failed (duplicate DN, missing parent, ...).
    Instance {
        /// Line of the record that failed to load.
        line: usize,
        /// Rendered instance error.
        source: String,
    },
    /// A resource limit was exceeded (guard against pathological inputs
    /// such as continuation bombs or absurdly deep DNs).
    LimitExceeded {
        /// Line where the limit was crossed (0 for whole-input limits).
        line: usize,
        /// Which limit was crossed, with the observed and allowed sizes.
        what: String,
    },
}

impl fmt::Display for LdifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdifError::MissingDn { line } => write!(f, "line {line}: record must start with dn:"),
            LdifError::DuplicateDn { line } => write!(f, "line {line}: duplicate dn: in record"),
            LdifError::MissingColon { line, content } => {
                write!(f, "line {line}: missing ':' in {content:?}")
            }
            LdifError::BadDn { line, source } => write!(f, "line {line}: bad DN: {source}"),
            LdifError::EmptyDn { line } => write!(f, "line {line}: record has empty DN"),
            LdifError::BadBase64 { line, reason } => write!(f, "line {line}: {reason}"),
            LdifError::DanglingContinuation { line } => {
                write!(f, "line {line}: continuation line with no preceding line")
            }
            LdifError::Instance { line, source } => {
                write!(f, "line {line}: cannot load record: {source}")
            }
            LdifError::LimitExceeded { line, what } => {
                write!(f, "line {line}: resource limit exceeded: {what}")
            }
        }
    }
}

impl std::error::Error for LdifError {}

/// Resource limits for LDIF parsing. Defaults are generous for real
/// directories but stop pathological inputs (continuation bombs, giant
/// single values, absurdly deep DNs) from exhausting memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LdifLimits {
    /// Maximum total input length in bytes.
    pub max_input_len: usize,
    /// Maximum length of one logical (unfolded) line in bytes.
    pub max_line_len: usize,
    /// Maximum number of records.
    pub max_records: usize,
    /// Maximum DN depth (number of RDN components).
    pub max_dn_depth: usize,
}

impl Default for LdifLimits {
    fn default() -> Self {
        LdifLimits {
            max_input_len: 256 << 20, // 256 MiB
            max_line_len: 1 << 20,    // 1 MiB per logical line
            max_records: 4_000_000,
            max_dn_depth: 256,
        }
    }
}

impl LdifLimits {
    /// Limits suitable for untrusted input (a few MiB, shallow trees).
    pub fn strict() -> Self {
        LdifLimits {
            max_input_len: 8 << 20,
            max_line_len: 64 << 10,
            max_records: 100_000,
            max_dn_depth: 64,
        }
    }
}

/// A logical (unfolded) LDIF line with its source position.
struct Logical {
    line: usize,
    text: String,
}

/// Unfolds continuation lines and strips comments / the version header.
fn logical_lines(text: &str, limits: &LdifLimits) -> Result<Vec<Logical>, LdifError> {
    let mut out: Vec<Logical> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.len() > limits.max_line_len {
            return Err(LdifError::LimitExceeded {
                line,
                what: format!("line is {} bytes (limit {})", raw.len(), limits.max_line_len),
            });
        }
        if let Some(rest) = raw.strip_prefix(' ') {
            // Continuation of the previous logical line. Cap the unfolded
            // length so a continuation bomb cannot grow one line unboundedly.
            match out.last_mut() {
                Some(prev) if !prev.text.is_empty() => {
                    if prev.text.len() + rest.len() > limits.max_line_len {
                        return Err(LdifError::LimitExceeded {
                            line,
                            what: format!(
                                "unfolded logical line exceeds {} bytes",
                                limits.max_line_len
                            ),
                        });
                    }
                    prev.text.push_str(rest);
                }
                _ => return Err(LdifError::DanglingContinuation { line }),
            }
            continue;
        }
        if raw.starts_with('#') {
            continue;
        }
        out.push(Logical { line, text: raw.to_owned() });
    }
    Ok(out)
}

/// Splits `attr: value` / `attr:: base64`, returning the attribute name and
/// decoded value.
fn split_line(l: &Logical) -> Result<(String, String), LdifError> {
    let colon = l
        .text
        .find(':')
        .ok_or_else(|| LdifError::MissingColon { line: l.line, content: l.text.clone() })?;
    let attr = l.text[..colon].trim().to_owned();
    let rest = &l.text[colon + 1..];
    if let Some(b64) = rest.strip_prefix(':') {
        let bytes = base64::decode(b64.trim())
            .map_err(|e| LdifError::BadBase64 { line: l.line, reason: e.to_string() })?;
        let value = String::from_utf8(bytes).map_err(|_| LdifError::BadBase64 {
            line: l.line,
            reason: "base64 value is not valid UTF-8".to_owned(),
        })?;
        Ok((attr, value))
    } else {
        Ok((attr, rest.trim_start().to_owned()))
    }
}

/// Parses LDIF text into records. Records are separated by blank lines; the
/// optional `version: 1` header is accepted and ignored. Uses the default
/// [`LdifLimits`]; see [`parse_ldif_limited`] for untrusted input.
pub fn parse_ldif(text: &str) -> Result<Vec<LdifRecord>, LdifError> {
    parse_ldif_limited(text, &LdifLimits::default())
}

/// Like [`parse_ldif`] but with explicit resource limits, returning
/// [`LdifError::LimitExceeded`] as soon as one is crossed.
pub fn parse_ldif_limited(text: &str, limits: &LdifLimits) -> Result<Vec<LdifRecord>, LdifError> {
    if text.len() > limits.max_input_len {
        return Err(LdifError::LimitExceeded {
            line: 0,
            what: format!("input is {} bytes (limit {})", text.len(), limits.max_input_len),
        });
    }
    let lines = logical_lines(text, limits)?;
    let mut records = Vec::new();
    let mut current: Option<LdifRecord> = None;
    let mut seen_any = false;

    for l in &lines {
        if l.text.trim().is_empty() {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            continue;
        }
        let (attr, value) = split_line(l)?;
        let key = attr.to_ascii_lowercase();
        if !seen_any && key == "version" {
            seen_any = true;
            continue;
        }
        seen_any = true;
        match (&mut current, key.as_str()) {
            (None, "dn") => {
                if records.len() >= limits.max_records {
                    return Err(LdifError::LimitExceeded {
                        line: l.line,
                        what: format!("more than {} records", limits.max_records),
                    });
                }
                let dn =
                    Dn::parse(&value).map_err(|e| LdifError::BadDn { line: l.line, source: e })?;
                if dn.depth() > limits.max_dn_depth {
                    return Err(LdifError::LimitExceeded {
                        line: l.line,
                        what: format!(
                            "DN depth {} exceeds limit {}",
                            dn.depth(),
                            limits.max_dn_depth
                        ),
                    });
                }
                current = Some(LdifRecord { dn, entry: Entry::new(), line: l.line });
            }
            (None, _) => return Err(LdifError::MissingDn { line: l.line }),
            (Some(_), "dn") => return Err(LdifError::DuplicateDn { line: l.line }),
            (Some(rec), _) => {
                rec.entry.add_value(&attr, value);
            }
        }
    }
    if let Some(rec) = current.take() {
        records.push(rec);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
version: 1
# The Figure 1 root entry.
dn: o=att
objectClass: organization
objectClass: orgGroup
objectClass: online
objectClass: top
o: att
uri: http://www.att.com/

dn: ou=attLabs,o=att
objectClass: orgUnit
objectClass: orgGroup
objectClass: top
ou: attLabs
location: FP
";

    #[test]
    fn parse_two_records() {
        let recs = parse_ldif(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].dn.to_string(), "o=att");
        assert!(recs[0].entry.has_class("organization"));
        assert!(recs[0].entry.has_class("online"));
        assert_eq!(recs[0].entry.first_value("uri"), Some("http://www.att.com/"));
        assert_eq!(recs[1].dn.to_string(), "ou=attLabs,o=att");
        assert_eq!(recs[1].entry.first_value("location"), Some("FP"));
    }

    #[test]
    fn continuation_lines_unfold() {
        let text = "dn: o=att\nobjectClass: organ\n ization\no: att\n";
        let recs = parse_ldif(text).unwrap();
        assert!(recs[0].entry.has_class("organization"));
    }

    #[test]
    fn base64_values_decode() {
        let text = format!(
            "dn: o=att\nobjectClass: top\ndescription:: {}\n",
            super::base64::encode("hello world".as_bytes())
        );
        let recs = parse_ldif(&text).unwrap();
        assert_eq!(recs[0].entry.first_value("description"), Some("hello world"));
    }

    #[test]
    fn record_without_dn_fails() {
        let err = parse_ldif("objectClass: top\n").unwrap_err();
        assert!(matches!(err, LdifError::MissingDn { line: 1 }));
    }

    #[test]
    fn duplicate_dn_fails() {
        let err = parse_ldif("dn: o=att\ndn: o=ibm\n").unwrap_err();
        assert!(matches!(err, LdifError::DuplicateDn { line: 2 }));
    }

    #[test]
    fn missing_colon_fails() {
        let err = parse_ldif("dn: o=att\nnonsense line\n").unwrap_err();
        assert!(matches!(err, LdifError::MissingColon { line: 2, .. }));
    }

    #[test]
    fn dangling_continuation_fails() {
        let err = parse_ldif(" leading continuation\n").unwrap_err();
        assert!(matches!(err, LdifError::DanglingContinuation { line: 1 }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header comment\n\n\ndn: o=att\nobjectClass: top\n\n# trailing\n";
        let recs = parse_ldif(text).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse_ldif("").unwrap().is_empty());
        assert!(parse_ldif("\n\n").unwrap().is_empty());
    }

    #[test]
    fn continuation_bomb_is_rejected() {
        // Many continuation lines folding into one ever-growing logical
        // line must trip the per-line cap, not exhaust memory.
        let limits = LdifLimits { max_line_len: 1024, ..LdifLimits::default() };
        let mut text = String::from("dn: o=att\ndescription: start\n");
        for _ in 0..64 {
            text.push(' ');
            text.push_str(&"x".repeat(100));
            text.push('\n');
        }
        let err = parse_ldif_limited(&text, &limits).unwrap_err();
        assert!(matches!(err, LdifError::LimitExceeded { .. }), "{err}");
    }

    #[test]
    fn oversized_single_line_is_rejected() {
        let limits = LdifLimits { max_line_len: 64, ..LdifLimits::default() };
        let text = format!("dn: o=att\ndescription: {}\n", "y".repeat(200));
        let err = parse_ldif_limited(&text, &limits).unwrap_err();
        assert!(matches!(err, LdifError::LimitExceeded { line: 2, .. }), "{err}");
    }

    #[test]
    fn deep_dn_is_rejected() {
        let limits = LdifLimits { max_dn_depth: 8, ..LdifLimits::default() };
        let dn = (0..20).map(|i| format!("ou=d{i}")).collect::<Vec<_>>().join(",");
        let text = format!("dn: {dn}\nobjectClass: top\n");
        let err = parse_ldif_limited(&text, &limits).unwrap_err();
        assert!(matches!(err, LdifError::LimitExceeded { line: 1, .. }), "{err}");
        // The same DN passes under default limits.
        assert!(parse_ldif(&text).is_ok());
    }

    #[test]
    fn record_count_limit_is_enforced() {
        let limits = LdifLimits { max_records: 3, ..LdifLimits::default() };
        let mut text = String::new();
        for i in 0..5 {
            text.push_str(&format!("dn: o=org{i}\nobjectClass: top\n\n"));
        }
        let err = parse_ldif_limited(&text, &limits).unwrap_err();
        assert!(matches!(err, LdifError::LimitExceeded { .. }), "{err}");
        assert_eq!(parse_ldif(&text).unwrap().len(), 5);
    }

    #[test]
    fn input_length_limit_is_enforced() {
        let limits = LdifLimits { max_input_len: 16, ..LdifLimits::default() };
        let err = parse_ldif_limited("dn: o=att\nobjectClass: top\n", &limits).unwrap_err();
        assert!(matches!(err, LdifError::LimitExceeded { line: 0, .. }), "{err}");
    }
}
