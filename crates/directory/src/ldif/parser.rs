//! LDIF record parser (RFC 2849 subset).

use std::fmt;

use super::base64;
use crate::dn::{Dn, DnParseError};
use crate::entry::Entry;

/// One parsed LDIF record: a DN plus the entry content.
#[derive(Debug, Clone)]
pub struct LdifRecord {
    /// The record's distinguished name.
    pub dn: Dn,
    /// The record's attributes (including `objectClass`).
    pub entry: Entry,
    /// 1-based line number where the record started (for diagnostics).
    pub line: usize,
}

/// Errors from LDIF parsing or loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LdifError {
    /// A record did not start with a `dn:` line.
    MissingDn {
        /// Line where the record started.
        line: usize,
    },
    /// A record contained a second `dn:` line.
    DuplicateDn {
        /// Line of the second `dn:`.
        line: usize,
    },
    /// A line had no `:` separator.
    MissingColon {
        /// The offending line number.
        line: usize,
        /// The line's content.
        content: String,
    },
    /// The DN failed to parse.
    BadDn {
        /// The offending line number.
        line: usize,
        /// Underlying DN error.
        source: DnParseError,
    },
    /// A record's DN was empty.
    EmptyDn {
        /// Line where the record started.
        line: usize,
    },
    /// A base64 value failed to decode, or decoded to invalid UTF-8.
    BadBase64 {
        /// The offending line number.
        line: usize,
        /// Description of the failure.
        reason: String,
    },
    /// A continuation line appeared with nothing to continue.
    DanglingContinuation {
        /// The offending line number.
        line: usize,
    },
    /// Loading into an instance failed (duplicate DN, missing parent, ...).
    Instance {
        /// Line of the record that failed to load.
        line: usize,
        /// Rendered instance error.
        source: String,
    },
}

impl fmt::Display for LdifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdifError::MissingDn { line } => write!(f, "line {line}: record must start with dn:"),
            LdifError::DuplicateDn { line } => write!(f, "line {line}: duplicate dn: in record"),
            LdifError::MissingColon { line, content } => {
                write!(f, "line {line}: missing ':' in {content:?}")
            }
            LdifError::BadDn { line, source } => write!(f, "line {line}: bad DN: {source}"),
            LdifError::EmptyDn { line } => write!(f, "line {line}: record has empty DN"),
            LdifError::BadBase64 { line, reason } => write!(f, "line {line}: {reason}"),
            LdifError::DanglingContinuation { line } => {
                write!(f, "line {line}: continuation line with no preceding line")
            }
            LdifError::Instance { line, source } => {
                write!(f, "line {line}: cannot load record: {source}")
            }
        }
    }
}

impl std::error::Error for LdifError {}

/// A logical (unfolded) LDIF line with its source position.
struct Logical {
    line: usize,
    text: String,
}

/// Unfolds continuation lines and strips comments / the version header.
fn logical_lines(text: &str) -> Result<Vec<Logical>, LdifError> {
    let mut out: Vec<Logical> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if let Some(rest) = raw.strip_prefix(' ') {
            // Continuation of the previous logical line.
            match out.last_mut() {
                Some(prev) if !prev.text.is_empty() => prev.text.push_str(rest),
                _ => return Err(LdifError::DanglingContinuation { line }),
            }
            continue;
        }
        if raw.starts_with('#') {
            continue;
        }
        out.push(Logical { line, text: raw.to_owned() });
    }
    Ok(out)
}

/// Splits `attr: value` / `attr:: base64`, returning the attribute name and
/// decoded value.
fn split_line(l: &Logical) -> Result<(String, String), LdifError> {
    let colon = l
        .text
        .find(':')
        .ok_or_else(|| LdifError::MissingColon { line: l.line, content: l.text.clone() })?;
    let attr = l.text[..colon].trim().to_owned();
    let rest = &l.text[colon + 1..];
    if let Some(b64) = rest.strip_prefix(':') {
        let bytes = base64::decode(b64.trim())
            .map_err(|e| LdifError::BadBase64 { line: l.line, reason: e.to_string() })?;
        let value = String::from_utf8(bytes).map_err(|_| LdifError::BadBase64 {
            line: l.line,
            reason: "base64 value is not valid UTF-8".to_owned(),
        })?;
        Ok((attr, value))
    } else {
        Ok((attr, rest.trim_start().to_owned()))
    }
}

/// Parses LDIF text into records. Records are separated by blank lines; the
/// optional `version: 1` header is accepted and ignored.
pub fn parse_ldif(text: &str) -> Result<Vec<LdifRecord>, LdifError> {
    let lines = logical_lines(text)?;
    let mut records = Vec::new();
    let mut current: Option<LdifRecord> = None;
    let mut seen_any = false;

    for l in &lines {
        if l.text.trim().is_empty() {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            continue;
        }
        let (attr, value) = split_line(l)?;
        let key = attr.to_ascii_lowercase();
        if !seen_any && key == "version" {
            seen_any = true;
            continue;
        }
        seen_any = true;
        match (&mut current, key.as_str()) {
            (None, "dn") => {
                let dn =
                    Dn::parse(&value).map_err(|e| LdifError::BadDn { line: l.line, source: e })?;
                current = Some(LdifRecord { dn, entry: Entry::new(), line: l.line });
            }
            (None, _) => return Err(LdifError::MissingDn { line: l.line }),
            (Some(_), "dn") => return Err(LdifError::DuplicateDn { line: l.line }),
            (Some(rec), _) => {
                rec.entry.add_value(&attr, value);
            }
        }
    }
    if let Some(rec) = current.take() {
        records.push(rec);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
version: 1
# The Figure 1 root entry.
dn: o=att
objectClass: organization
objectClass: orgGroup
objectClass: online
objectClass: top
o: att
uri: http://www.att.com/

dn: ou=attLabs,o=att
objectClass: orgUnit
objectClass: orgGroup
objectClass: top
ou: attLabs
location: FP
";

    #[test]
    fn parse_two_records() {
        let recs = parse_ldif(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].dn.to_string(), "o=att");
        assert!(recs[0].entry.has_class("organization"));
        assert!(recs[0].entry.has_class("online"));
        assert_eq!(recs[0].entry.first_value("uri"), Some("http://www.att.com/"));
        assert_eq!(recs[1].dn.to_string(), "ou=attLabs,o=att");
        assert_eq!(recs[1].entry.first_value("location"), Some("FP"));
    }

    #[test]
    fn continuation_lines_unfold() {
        let text = "dn: o=att\nobjectClass: organ\n ization\no: att\n";
        let recs = parse_ldif(text).unwrap();
        assert!(recs[0].entry.has_class("organization"));
    }

    #[test]
    fn base64_values_decode() {
        let text = format!(
            "dn: o=att\nobjectClass: top\ndescription:: {}\n",
            super::base64::encode("hello world".as_bytes())
        );
        let recs = parse_ldif(&text).unwrap();
        assert_eq!(recs[0].entry.first_value("description"), Some("hello world"));
    }

    #[test]
    fn record_without_dn_fails() {
        let err = parse_ldif("objectClass: top\n").unwrap_err();
        assert!(matches!(err, LdifError::MissingDn { line: 1 }));
    }

    #[test]
    fn duplicate_dn_fails() {
        let err = parse_ldif("dn: o=att\ndn: o=ibm\n").unwrap_err();
        assert!(matches!(err, LdifError::DuplicateDn { line: 2 }));
    }

    #[test]
    fn missing_colon_fails() {
        let err = parse_ldif("dn: o=att\nnonsense line\n").unwrap_err();
        assert!(matches!(err, LdifError::MissingColon { line: 2, .. }));
    }

    #[test]
    fn dangling_continuation_fails() {
        let err = parse_ldif(" leading continuation\n").unwrap_err();
        assert!(matches!(err, LdifError::DanglingContinuation { line: 1 }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header comment\n\n\ndn: o=att\nobjectClass: top\n\n# trailing\n";
        let recs = parse_ldif(text).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse_ldif("").unwrap().is_empty());
        assert!(parse_ldif("\n\n").unwrap().is_empty());
    }
}
