//! Minimal RFC 4648 base64 codec for LDIF `attr:: value` lines.
//!
//! Hand-rolled to keep the dependency surface at zero; LDIF needs only
//! standard-alphabet encode/decode with `=` padding.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes to standard base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 { ALPHABET[triple as usize & 0x3f] as char } else { '=' });
    }
    out
}

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base64Error {
    /// Input length is not a multiple of 4.
    BadLength(usize),
    /// A character outside the base64 alphabet appeared.
    BadCharacter(char),
    /// Padding appeared anywhere but the final one or two positions.
    BadPadding,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::BadLength(n) => write!(f, "base64 length {n} is not a multiple of 4"),
            Base64Error::BadCharacter(c) => write!(f, "invalid base64 character {c:?}"),
            Base64Error::BadPadding => write!(f, "misplaced base64 padding"),
        }
    }
}

impl std::error::Error for Base64Error {}

fn value_of(b: u8) -> Option<u32> {
    match b {
        b'A'..=b'Z' => Some((b - b'A') as u32),
        b'a'..=b'z' => Some((b - b'a' + 26) as u32),
        b'0'..=b'9' => Some((b - b'0' + 52) as u32),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes standard base64 with padding.
pub fn decode(s: &str) -> Result<Vec<u8>, Base64Error> {
    let bytes = s.as_bytes();
    if bytes.len() % 4 != 0 {
        return Err(Base64Error::BadLength(bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (chunk_idx, chunk) in bytes.chunks(4).enumerate() {
        let is_last = (chunk_idx + 1) * 4 == bytes.len();
        let pads = chunk.iter().rev().take_while(|&&b| b == b'=').count();
        if pads > 2 || (pads > 0 && !is_last) {
            return Err(Base64Error::BadPadding);
        }
        // Padding must be a suffix of the chunk.
        if chunk[..4 - pads].contains(&b'=') {
            return Err(Base64Error::BadPadding);
        }
        let mut triple = 0u32;
        for &b in &chunk[..4 - pads] {
            let v = value_of(b).ok_or(Base64Error::BadCharacter(b as char))?;
            triple = (triple << 6) | v;
        }
        triple <<= 6 * pads as u32;
        out.push((triple >> 16) as u8);
        if pads < 2 {
            out.push((triple >> 8) as u8);
        }
        if pads == 0 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("").unwrap(), b"");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("Zm8=").unwrap(), b"fo");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode("abc"), Err(Base64Error::BadLength(3)));
        assert_eq!(decode("ab!c"), Err(Base64Error::BadCharacter('!')));
        assert_eq!(decode("a==="), Err(Base64Error::BadPadding));
        assert_eq!(decode("ab=c"), Err(Base64Error::BadPadding));
        assert_eq!(decode("ab==Zm9v"), Err(Base64Error::BadPadding));
    }
}
