//! LDIF (LDAP Data Interchange Format, RFC 2849 subset) reader and writer.
//!
//! This is how real directory content moves between servers and tools, and
//! how our examples load the paper's Figure 1 instance from a file. The
//! subset implemented: `version:` header, comments, folded (continuation)
//! lines, `attr: value` and base64 `attr:: value` lines, records separated by
//! blank lines, parents-before-children ordering on output.

pub mod base64;
mod parser;
mod writer;

pub use parser::{parse_ldif, parse_ldif_limited, LdifError, LdifLimits, LdifRecord};
pub use writer::{write_ldif, write_record};

use crate::dn::Dn;
use crate::instance::{DirectoryInstance, InstanceError};

/// Loads LDIF text into an existing instance. Records must appear
/// parents-first (standard LDIF practice); a record whose parent DN is not
/// present (neither in the instance nor earlier in the file) becomes a new
/// root.
///
/// Returns the number of entries added.
pub fn load_into(instance: &mut DirectoryInstance, text: &str) -> Result<usize, LdifError> {
    load_into_limited(instance, text, &LdifLimits::default())
}

/// Like [`load_into`] but with explicit resource limits — the variant
/// every untrusted-bytes surface (server socket, CLI with `--max-*`
/// flags) must use.
pub fn load_into_limited(
    instance: &mut DirectoryInstance,
    text: &str,
    limits: &LdifLimits,
) -> Result<usize, LdifError> {
    let records = parse_ldif_limited(text, limits)?;
    let mut added = 0;
    for record in records {
        let dn = &record.dn;
        let rdn = dn.rdn().ok_or(LdifError::EmptyDn { line: record.line })?.clone();
        let result = match dn.parent() {
            Some(parent_dn) if !parent_dn.is_root() => match instance.lookup_dn(&parent_dn) {
                Some(parent) => instance.add_named_child(parent, rdn, record.entry),
                None => instance.add_named_root(rdn, record.entry),
            },
            _ => instance.add_named_root(rdn, record.entry),
        };
        result.map_err(|e| LdifError::Instance { line: record.line, source: e.to_string() })?;
        added += 1;
    }
    Ok(added)
}

/// Parses LDIF text into a fresh white-pages instance.
pub fn load(text: &str) -> Result<DirectoryInstance, LdifError> {
    let mut instance = DirectoryInstance::white_pages();
    load_into(&mut instance, text)?;
    Ok(instance)
}

/// Serialises the whole instance to LDIF, preorder (parents first). Entries
/// must all be named; unnamed entries yield an error.
pub fn dump(instance: &DirectoryInstance) -> Result<String, InstanceError> {
    write_ldif(instance)
}

/// Re-exported for convenience in round-trip tests.
pub fn entry_dn(
    instance: &DirectoryInstance,
    id: crate::forest::EntryId,
) -> Result<Dn, InstanceError> {
    instance.dn(id)
}
