//! The directory instance: Definition 2.1's `D = (R, class, val, N)`.
//!
//! [`DirectoryInstance`] combines the arena [`Forest`] (the relation `N`),
//! per-entry data ([`Entry`] gives `class` and `val`), the attribute
//! namespace, and optional RDN naming so entries can be addressed by
//! distinguished name. It also owns the lazily-maintained [`InstanceIndex`]
//! that query evaluation and legality checking run against: call
//! [`DirectoryInstance::prepare`] after a batch of mutations, then read
//! through the shared accessors.

use std::fmt;

use crate::attribute::AttributeRegistry;
use crate::dn::{Dn, Rdn};
use crate::entry::Entry;
use crate::forest::{EntryId, Forest, ForestError};
use crate::index::InstanceIndex;

/// Errors from instance-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// Underlying forest error (missing entry, non-leaf deletion, ...).
    Forest(ForestError),
    /// A value failed its attribute's syntax validation.
    SyntaxViolation {
        /// Attribute whose value was invalid.
        attribute: String,
        /// The offending value.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A sibling with a matching RDN already exists under the same parent
    /// (DNs must be unique: "the distinguished name of an entry serves as a
    /// key", paper §6.1).
    DuplicateRdn(String),
    /// The entry has no RDN so no DN can be formed.
    Unnamed(EntryId),
    /// A single-valued attribute was given several values.
    SingleValueViolation {
        /// The single-valued attribute.
        attribute: String,
        /// How many values the entry carried.
        count: usize,
    },
}

impl From<ForestError> for InstanceError {
    fn from(e: ForestError) -> Self {
        InstanceError::Forest(e)
    }
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Forest(e) => write!(f, "{e}"),
            InstanceError::SyntaxViolation { attribute, value, reason } => {
                write!(f, "value {value:?} invalid for attribute {attribute:?}: {reason}")
            }
            InstanceError::DuplicateRdn(rdn) => {
                write!(f, "an entry named {rdn:?} already exists under this parent")
            }
            InstanceError::Unnamed(id) => write!(f, "entry {id} has no RDN"),
            InstanceError::SingleValueViolation { attribute, count } => {
                write!(f, "attribute {attribute:?} is single-valued but has {count} values")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// One preorder row of a slot-exact instance snapshot: the raw slot
/// number, the parent's slot (if any), and the entry's naming and
/// content. Together with the arena bound and the free stack this is
/// the full observable state of an instance —
/// [`DirectoryInstance::from_slots`] rebuilds an instance with
/// byte-identical [`canonical_bytes`](DirectoryInstance::canonical_bytes)
/// *and* identical future slot assignment, which is what lets a journal
/// tail (addressing entries as `existing:<slot>`) replay on top of a
/// restored checkpoint.
#[derive(Debug, Clone)]
pub struct SlotRow {
    /// The raw arena slot ([`EntryId::index`]).
    pub slot: u32,
    /// The parent's slot, or `None` for roots.
    pub parent: Option<u32>,
    /// The entry's RDN, when named.
    pub rdn: Option<Rdn>,
    /// The entry content.
    pub entry: Entry,
}

/// An LDAP directory instance.
#[derive(Debug, Clone)]
pub struct DirectoryInstance {
    forest: Forest,
    /// Slot-parallel entry storage.
    entries: Vec<Option<Entry>>,
    /// Slot-parallel RDN storage (optional naming).
    rdns: Vec<Option<Rdn>>,
    registry: AttributeRegistry,
    index: Option<InstanceIndex>,
}

impl Default for DirectoryInstance {
    fn default() -> Self {
        DirectoryInstance::new(AttributeRegistry::new())
    }
}

impl DirectoryInstance {
    /// An empty instance over the given attribute namespace.
    pub fn new(registry: AttributeRegistry) -> Self {
        DirectoryInstance {
            forest: Forest::new(),
            entries: Vec::new(),
            rdns: Vec::new(),
            registry,
            index: None,
        }
    }

    /// An empty instance with the white-pages attribute namespace.
    pub fn white_pages() -> Self {
        DirectoryInstance::new(AttributeRegistry::white_pages())
    }

    /// The instance's full observable state as slot-exact snapshot rows
    /// (preorder), for [`from_slots`](Self::from_slots). Pair with
    /// [`Forest::slot_bound`] and [`Forest::free_slots`] via
    /// [`forest`](Self::forest).
    pub fn slot_rows(&self) -> Vec<SlotRow> {
        self.forest
            .iter()
            .map(|id| SlotRow {
                slot: id.index() as u32,
                parent: self.forest.parent(id).map(|p| p.index() as u32),
                rdn: self.rdn(id).cloned(),
                entry: self.entries[id.index()].clone().expect("live node has an entry"),
            })
            .collect()
    }

    /// Rebuilds an instance from a slot-exact snapshot: `rows` in
    /// preorder, the arena `slot_bound`, and the dead-slot `free` stack
    /// (bottom first). The result has byte-identical
    /// [`canonical_bytes`](Self::canonical_bytes) to the snapshot source
    /// and assigns the same slots to future insertions — unlike
    /// [`graft_subtree`](Self::graft_subtree), which renumbers.
    pub fn from_slots(
        registry: AttributeRegistry,
        slot_bound: usize,
        rows: Vec<SlotRow>,
        free: &[u32],
    ) -> Result<DirectoryInstance, InstanceError> {
        let live: Vec<(u32, Option<u32>)> = rows.iter().map(|r| (r.slot, r.parent)).collect();
        let forest = Forest::from_slots(slot_bound, &live, free)?;
        let mut entries: Vec<Option<Entry>> = Vec::new();
        let mut rdns: Vec<Option<Rdn>> = Vec::new();
        entries.resize_with(slot_bound, || None);
        rdns.resize_with(slot_bound, || None);
        for row in rows {
            entries[row.slot as usize] = Some(row.entry);
            rdns[row.slot as usize] = row.rdn;
        }
        Ok(DirectoryInstance { forest, entries, rdns, registry, index: None })
    }

    /// The attribute namespace.
    pub fn registry(&self) -> &AttributeRegistry {
        &self.registry
    }

    /// Mutable access to the attribute namespace (for late registration).
    pub fn registry_mut(&mut self) -> &mut AttributeRegistry {
        &mut self.registry
    }

    /// The underlying forest (read-only).
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.forest.len()
    }

    /// True iff the instance has no entries.
    pub fn is_empty(&self) -> bool {
        self.forest.is_empty()
    }

    fn grow_slots(&mut self, id: EntryId) {
        let needed = id.index() + 1;
        if self.entries.len() < needed {
            self.entries.resize_with(needed, || None);
            self.rdns.resize_with(needed, || None);
        }
    }

    fn invalidate(&mut self) {
        self.index = None;
    }

    // ----- construction -----

    /// Adds `entry` as a new root.
    pub fn add_root_entry(&mut self, entry: Entry) -> EntryId {
        self.invalidate();
        let id = self.forest.add_root();
        self.grow_slots(id);
        self.entries[id.index()] = Some(entry);
        self.rdns[id.index()] = None;
        id
    }

    /// Adds `entry` as a new child of `parent` (which must exist — LDAP
    /// requires new entries be roots or children of existing entries, §4.1).
    pub fn add_child_entry(
        &mut self,
        parent: EntryId,
        entry: Entry,
    ) -> Result<EntryId, InstanceError> {
        self.invalidate();
        let id = self.forest.add_child(parent)?;
        self.grow_slots(id);
        self.entries[id.index()] = Some(entry);
        self.rdns[id.index()] = None;
        Ok(id)
    }

    /// Adds a named root; the RDN must not collide with an existing root's.
    pub fn add_named_root(&mut self, rdn: Rdn, entry: Entry) -> Result<EntryId, InstanceError> {
        if self.find_root(&rdn).is_some() {
            return Err(InstanceError::DuplicateRdn(rdn.to_string()));
        }
        let id = self.add_root_entry(entry);
        self.rdns[id.index()] = Some(rdn);
        Ok(id)
    }

    /// Adds a named child; the RDN must be unique among `parent`'s children.
    pub fn add_named_child(
        &mut self,
        parent: EntryId,
        rdn: Rdn,
        entry: Entry,
    ) -> Result<EntryId, InstanceError> {
        if self.find_child(parent, &rdn).is_some() {
            return Err(InstanceError::DuplicateRdn(rdn.to_string()));
        }
        let id = self.add_child_entry(parent, entry)?;
        self.rdns[id.index()] = Some(rdn);
        Ok(id)
    }

    // ----- removal -----

    /// Removes a leaf entry (LDAP deletion discipline).
    pub fn remove_leaf(&mut self, id: EntryId) -> Result<Entry, InstanceError> {
        self.forest.remove_leaf(id)?;
        self.invalidate();
        self.rdns[id.index()] = None;
        Ok(self.entries[id.index()].take().expect("live node has an entry"))
    }

    /// Removes the subtree rooted at `id`; returns removed `(id, entry)`
    /// pairs in post-order.
    pub fn remove_subtree(&mut self, id: EntryId) -> Result<Vec<(EntryId, Entry)>, InstanceError> {
        let order = self.forest.remove_subtree(id)?;
        self.invalidate();
        let mut out = Vec::with_capacity(order.len());
        for e in order {
            self.rdns[e.index()] = None;
            out.push((e, self.entries[e.index()].take().expect("live node has an entry")));
        }
        Ok(out)
    }

    /// Moves the subtree rooted at `id` under `new_parent` (LDAP ModifyDN).
    /// If `id` is named, its RDN must not clash among the destination's
    /// children.
    pub fn move_subtree(&mut self, id: EntryId, new_parent: EntryId) -> Result<(), InstanceError> {
        if let Some(rdn) = self.rdn(id).cloned() {
            if self.find_child(new_parent, &rdn).is_some_and(|existing| existing != id) {
                return Err(InstanceError::DuplicateRdn(rdn.to_string()));
            }
        }
        self.forest.move_subtree(id, new_parent)?;
        self.invalidate();
        Ok(())
    }

    /// Detaches the subtree rooted at `id` into a new forest root.
    pub fn move_subtree_to_root(&mut self, id: EntryId) -> Result<(), InstanceError> {
        if let Some(rdn) = self.rdn(id).cloned() {
            if self.find_root(&rdn).is_some_and(|existing| existing != id) {
                return Err(InstanceError::DuplicateRdn(rdn.to_string()));
            }
        }
        self.forest.move_subtree_to_root(id)?;
        self.invalidate();
        Ok(())
    }

    // ----- access -----

    /// Whether `id` refers to a live entry.
    pub fn contains(&self, id: EntryId) -> bool {
        self.forest.contains(id)
    }

    /// The entry at `id`, if live.
    pub fn entry(&self, id: EntryId) -> Option<&Entry> {
        if !self.forest.contains(id) {
            return None;
        }
        self.entries.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the entry at `id`. Invalidates the index (class
    /// membership may change).
    pub fn entry_mut(&mut self, id: EntryId) -> Option<&mut Entry> {
        if !self.forest.contains(id) {
            return None;
        }
        self.invalidate();
        self.entries.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// The RDN of `id`, if the entry was added with a name.
    pub fn rdn(&self, id: EntryId) -> Option<&Rdn> {
        if !self.forest.contains(id) {
            return None;
        }
        self.rdns.get(id.index()).and_then(Option::as_ref)
    }

    /// Assigns or replaces the RDN of `id`.
    pub fn set_rdn(&mut self, id: EntryId, rdn: Rdn) -> Result<(), InstanceError> {
        if !self.forest.contains(id) {
            return Err(InstanceError::Forest(ForestError::NoSuchEntry(id)));
        }
        self.rdns[id.index()] = Some(rdn);
        Ok(())
    }

    /// The full DN of `id`, built from its RDN chain. Errors if any entry on
    /// the path to the root is unnamed.
    pub fn dn(&self, id: EntryId) -> Result<Dn, InstanceError> {
        if !self.forest.contains(id) {
            return Err(InstanceError::Forest(ForestError::NoSuchEntry(id)));
        }
        let mut rdns = Vec::new();
        let mut cur = Some(id);
        while let Some(e) = cur {
            let rdn = self.rdn(e).ok_or(InstanceError::Unnamed(e))?;
            rdns.push(rdn.clone());
            cur = self.forest.parent(e);
        }
        Ok(Dn::from_rdns(rdns))
    }

    fn find_root(&self, rdn: &Rdn) -> Option<EntryId> {
        self.forest.roots().find(|&r| self.rdn(r).is_some_and(|x| x.matches(rdn)))
    }

    fn find_child(&self, parent: EntryId, rdn: &Rdn) -> Option<EntryId> {
        self.forest.children(parent).find(|&c| self.rdn(c).is_some_and(|x| x.matches(rdn)))
    }

    /// Resolves a DN to an entry by walking RDN components from the root.
    pub fn lookup_dn(&self, dn: &Dn) -> Option<EntryId> {
        let mut rdns = dn.rdns().iter().rev();
        let mut cur = self.find_root(rdns.next()?)?;
        for rdn in rdns {
            cur = self.find_child(cur, rdn)?;
        }
        Some(cur)
    }

    /// Iterates `(id, entry)` in preorder.
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, &Entry)> {
        self.forest
            .iter()
            .map(move |id| (id, self.entries[id.index()].as_ref().expect("live node has an entry")))
    }

    /// Copies the subtree of `src` rooted at `root` into this instance
    /// as a new top-level subtree, preserving preorder (and therefore
    /// sibling order), entry content, and naming. Slot ids in `self`
    /// are assigned in copy order, so grafting the same subtrees in the
    /// same order always yields the same canonical bytes — the basis of
    /// the sharded≡unsharded comparison, which rebuilds both engines'
    /// states through this method before comparing.
    pub fn graft_subtree(
        &mut self,
        src: &DirectoryInstance,
        root: EntryId,
    ) -> Result<EntryId, InstanceError> {
        let root_entry =
            src.entry(root).ok_or(InstanceError::Forest(ForestError::NoSuchEntry(root)))?.clone();
        let new_root = match src.rdn(root) {
            Some(rdn) => self.add_named_root(rdn.clone(), root_entry)?,
            None => self.add_root_entry(root_entry),
        };
        // Explicit stack, children pushed in reverse so pops preserve
        // sibling order.
        let mut stack: Vec<(EntryId, EntryId)> = Vec::new();
        let kids: Vec<EntryId> = src.forest.children(root).collect();
        for &k in kids.iter().rev() {
            stack.push((k, new_root));
        }
        while let Some((s, dst_parent)) = stack.pop() {
            let entry =
                src.entry(s).ok_or(InstanceError::Forest(ForestError::NoSuchEntry(s)))?.clone();
            let d = match src.rdn(s) {
                Some(rdn) => self.add_named_child(dst_parent, rdn.clone(), entry)?,
                None => self.add_child_entry(dst_parent, entry)?,
            };
            let kids: Vec<EntryId> = src.forest.children(s).collect();
            for &k in kids.iter().rev() {
                stack.push((k, d));
            }
        }
        Ok(new_root)
    }

    /// A canonical byte serialization of the full observable state: every
    /// live entry in preorder with its slot id, parent id, RDN, object
    /// classes, and attribute values in storage order. Two instances have
    /// equal canonical bytes iff they are observably identical — same
    /// ids, hierarchy, naming, and content — which is what the
    /// crash-consistency suite means by "byte-identical to the
    /// pre-transaction snapshot". Unlike the LDIF dump this covers
    /// unnamed entries, and unlike `PartialEq` on a derived struct it is
    /// insensitive to caches (the lazy index never participates).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        use std::fmt::Write;
        let mut out = String::new();
        for id in self.forest.iter() {
            let _ = match self.forest.parent(id) {
                Some(p) => write!(out, "{}<{}", id.index(), p.index()),
                None => write!(out, "{}<-", id.index()),
            };
            let _ = match &self.rdns[id.index()] {
                Some(rdn) => write!(out, " rdn={:?}", rdn.to_string()),
                None => write!(out, " rdn=-"),
            };
            if let Some(entry) = &self.entries[id.index()] {
                let _ = write!(out, " classes={:?}", entry.classes());
                for (attr, values) in entry.attributes() {
                    let _ = write!(out, " {attr:?}={values:?}");
                }
            }
            out.push('\n');
        }
        out.into_bytes()
    }

    // ----- validation against the attribute namespace -----

    /// Validates every (attribute, value) pair of `id` against the registry:
    /// syntax membership (`v ∈ dom(τ(a))`, Definition 2.1(3a)) and
    /// single-value restrictions. Unregistered attributes pass (the
    /// bounding-schema's *content* check is what constrains the vocabulary).
    pub fn validate_entry_values(&self, id: EntryId) -> Result<(), InstanceError> {
        let entry = self.entry(id).ok_or(InstanceError::Forest(ForestError::NoSuchEntry(id)))?;
        for (attr, values) in entry.attributes() {
            if let Some(def) = self.registry.get(attr) {
                if def.is_single_valued() && values.len() > 1 {
                    return Err(InstanceError::SingleValueViolation {
                        attribute: attr.to_owned(),
                        count: values.len(),
                    });
                }
                for value in values {
                    def.syntax().validate(value).map_err(|e| InstanceError::SyntaxViolation {
                        attribute: attr.to_owned(),
                        value: value.clone(),
                        reason: e.to_string(),
                    })?;
                }
            }
        }
        Ok(())
    }

    // ----- preparation for query / legality evaluation -----

    /// Ensures numbering and secondary indexes are fresh. Call once after a
    /// batch of mutations; read-only evaluation then uses the shared
    /// accessors below.
    pub fn prepare(&mut self) {
        self.forest.ensure_numbered();
        if self.index.is_none() {
            self.index = Some(InstanceIndex::build(&self.forest, &self.entries));
        }
    }

    /// Whether [`prepare`](Self::prepare) has run since the last mutation.
    pub fn is_prepared(&self) -> bool {
        self.index.is_some() && self.forest.is_numbered()
    }

    /// The secondary index.
    ///
    /// # Panics
    /// If the instance is not [`prepare`](Self::prepare)d.
    pub fn index(&self) -> &InstanceIndex {
        self.index.as_ref().expect("instance not prepared; call prepare() after mutations")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;

    fn person(uid: &str) -> Entry {
        Entry::builder().class("person").class("top").attr("uid", uid).build()
    }

    #[test]
    fn build_and_lookup_by_dn() {
        let mut d = DirectoryInstance::white_pages();
        let org = d
            .add_named_root(
                Rdn::single("o", "att"),
                Entry::builder().class("organization").class("top").attr("o", "att").build(),
            )
            .unwrap();
        let labs = d
            .add_named_child(
                org,
                Rdn::single("ou", "attLabs"),
                Entry::builder().class("orgUnit").class("top").attr("ou", "attLabs").build(),
            )
            .unwrap();
        let laks = d.add_named_child(labs, Rdn::single("uid", "laks"), person("laks")).unwrap();

        let dn = d.dn(laks).unwrap();
        assert_eq!(dn.to_string(), "uid=laks,ou=attLabs,o=att");
        assert_eq!(d.lookup_dn(&dn), Some(laks));
        assert_eq!(d.lookup_dn(&Dn::parse("uid=LAKS,ou=ATTLABS,o=ATT").unwrap()), Some(laks));
        assert_eq!(d.lookup_dn(&Dn::parse("uid=nope,ou=attLabs,o=att").unwrap()), None);
    }

    #[test]
    fn duplicate_rdn_rejected() {
        let mut d = DirectoryInstance::default();
        let org = d.add_named_root(Rdn::single("o", "att"), person("x")).unwrap();
        d.add_named_child(org, Rdn::single("uid", "a"), person("a")).unwrap();
        let err = d.add_named_child(org, Rdn::single("uid", "A"), person("a2")).unwrap_err();
        assert!(matches!(err, InstanceError::DuplicateRdn(_)));
        // Same RDN under a *different* parent is fine.
        let org2 = d.add_named_root(Rdn::single("o", "ibm"), person("y")).unwrap();
        d.add_named_child(org2, Rdn::single("uid", "a"), person("a")).unwrap();
    }

    #[test]
    fn remove_leaf_returns_entry() {
        let mut d = DirectoryInstance::default();
        let r = d.add_root_entry(person("a"));
        let c = d.add_child_entry(r, person("b")).unwrap();
        let e = d.remove_leaf(c).unwrap();
        assert_eq!(e.first_value("uid"), Some("b"));
        assert!(d.entry(c).is_none());
        assert!(d.remove_leaf(r).is_ok());
        assert!(d.is_empty());
    }

    #[test]
    fn canonical_bytes_detect_any_observable_change() {
        let mut d = DirectoryInstance::default();
        let r = d.add_root_entry(person("r"));
        let m = d.add_child_entry(r, person("m")).unwrap();
        let baseline = d.canonical_bytes();
        // A clone is byte-identical; preparing the index changes nothing.
        let mut clone = d.clone();
        clone.prepare();
        assert_eq!(clone.canonical_bytes(), baseline);
        // Content, naming, and structure changes all show up.
        clone.entry_mut(m).unwrap().add_value("title", "x");
        assert_ne!(clone.canonical_bytes(), baseline);
        let mut named = d.clone();
        named.set_rdn(m, Rdn::single("uid", "m")).unwrap();
        assert_ne!(named.canonical_bytes(), baseline);
        let mut moved = d.clone();
        let _ = moved.add_child_entry(m, person("leaf")).unwrap();
        assert_ne!(moved.canonical_bytes(), baseline);
    }

    #[test]
    fn remove_subtree_returns_postorder() {
        let mut d = DirectoryInstance::default();
        let r = d.add_root_entry(person("r"));
        let m = d.add_child_entry(r, person("m")).unwrap();
        let l = d.add_child_entry(m, person("l")).unwrap();
        let removed = d.remove_subtree(m).unwrap();
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].0, l);
        assert_eq!(removed[1].0, m);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn move_subtree_checks_rdn_uniqueness() {
        let mut d = DirectoryInstance::default();
        let r1 = d.add_named_root(Rdn::single("o", "a"), person("a")).unwrap();
        let r2 = d.add_named_root(Rdn::single("o", "b"), person("b")).unwrap();
        let kid = d.add_named_child(r1, Rdn::single("uid", "k"), person("k")).unwrap();
        d.add_named_child(r2, Rdn::single("uid", "k"), person("k2")).unwrap();
        // Moving kid under r2 would clash with the existing uid=k child.
        assert!(matches!(d.move_subtree(kid, r2), Err(InstanceError::DuplicateRdn(_))));
        // Moving under a fresh parent works and updates the DN.
        let r3 = d.add_named_root(Rdn::single("o", "c"), person("c")).unwrap();
        d.move_subtree(kid, r3).unwrap();
        assert_eq!(d.dn(kid).unwrap().to_string(), "uid=k,o=c");
    }

    #[test]
    fn prepare_and_index() {
        let mut d = DirectoryInstance::default();
        let r = d.add_root_entry(person("a"));
        d.add_child_entry(r, person("b")).unwrap();
        assert!(!d.is_prepared());
        d.prepare();
        assert!(d.is_prepared());
        assert_eq!(d.index().entries_with_class("person").len(), 2);
        // Mutation invalidates.
        d.entry_mut(r).unwrap().add_class("online");
        assert!(!d.is_prepared());
        d.prepare();
        assert_eq!(d.index().entries_with_class("online").len(), 1);
    }

    #[test]
    fn validate_entry_values_checks_syntax() {
        let mut d = DirectoryInstance::white_pages();
        let ok =
            d.add_root_entry(Entry::builder().class("person").attr("employeeNumber", "42").build());
        d.prepare();
        assert!(d.validate_entry_values(ok).is_ok());

        let bad = d.add_root_entry(
            Entry::builder().class("person").attr("employeeNumber", "forty-two").build(),
        );
        assert!(matches!(d.validate_entry_values(bad), Err(InstanceError::SyntaxViolation { .. })));

        let mut e = Entry::builder().class("person").build();
        e.add_value("uid", "a");
        e.add_value("uid", "b");
        let multi = d.add_root_entry(e);
        assert!(matches!(
            d.validate_entry_values(multi),
            Err(InstanceError::SingleValueViolation { .. })
        ));
    }

    #[test]
    fn dn_of_unnamed_entry_errors() {
        let mut d = DirectoryInstance::default();
        let r = d.add_root_entry(person("a"));
        assert!(matches!(d.dn(r), Err(InstanceError::Unnamed(_))));
        d.set_rdn(r, Rdn::single("uid", "a")).unwrap();
        assert_eq!(d.dn(r).unwrap().to_string(), "uid=a");
    }

    #[test]
    fn graft_subtree_preserves_order_naming_and_content() {
        let mut d = DirectoryInstance::default();
        let r = d.add_named_root(Rdn::single("o", "a"), person("r")).unwrap();
        let a = d.add_named_child(r, Rdn::single("uid", "a"), person("a")).unwrap();
        d.add_named_child(r, Rdn::single("uid", "b"), person("b")).unwrap();
        d.add_child_entry(a, person("leaf")).unwrap();

        let mut fresh = DirectoryInstance::default();
        let copied = fresh.graft_subtree(&d, r).unwrap();
        assert_eq!(fresh.len(), 4);
        assert_eq!(fresh.rdn(copied).unwrap().to_string(), "o=a");
        let uids: Vec<_> =
            fresh.iter().map(|(_, e)| e.first_value("uid").unwrap().to_owned()).collect();
        assert_eq!(uids, ["r", "a", "leaf", "b"], "graft must preserve preorder");
        // The unnamed leaf stays unnamed.
        assert_eq!(fresh.iter().filter(|&(id, _)| fresh.rdn(id).is_none()).count(), 1);
        // Same graft order ⇒ same canonical bytes, regardless of the
        // source's slot history.
        let mut again = DirectoryInstance::default();
        again.graft_subtree(&d, r).unwrap();
        assert_eq!(fresh.canonical_bytes(), again.canonical_bytes());
    }

    #[test]
    fn slot_snapshot_roundtrip_is_exact() {
        let mut d = DirectoryInstance::white_pages();
        let r = d.add_named_root(Rdn::single("o", "att"), person("r")).unwrap();
        let a = d.add_named_child(r, Rdn::single("uid", "a"), person("a")).unwrap();
        let b = d.add_child_entry(r, person("b")).unwrap();
        d.add_child_entry(a, person("leaf")).unwrap();
        // Punch a hole so the free stack matters.
        d.remove_leaf(b).unwrap();

        let rows = d.slot_rows();
        let restored = DirectoryInstance::from_slots(
            d.registry().clone(),
            d.forest().slot_bound(),
            rows,
            d.forest().free_slots(),
        )
        .unwrap();
        assert_eq!(restored.canonical_bytes(), d.canonical_bytes());
        assert_eq!(restored.forest().free_slots(), d.forest().free_slots());
        // Future insertions land on the same slot in both.
        let mut live = d.clone();
        let mut rest = restored.clone();
        let x = live.add_child_entry(r, person("x")).unwrap();
        let y = rest.add_child_entry(r, person("x")).unwrap();
        assert_eq!(x, y, "reused slot must match");
        assert_eq!(live.canonical_bytes(), rest.canonical_bytes());
    }

    #[test]
    fn iter_is_preorder() {
        let mut d = DirectoryInstance::default();
        let r = d.add_root_entry(person("r"));
        let a = d.add_child_entry(r, person("a")).unwrap();
        let b = d.add_child_entry(r, person("b")).unwrap();
        let ids: Vec<_> = d.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, [r, a, b]);
        let uids: Vec<_> =
            d.iter().map(|(_, e)| e.first_value("uid").unwrap().to_owned()).collect();
        assert_eq!(uids, ["r", "a", "b"]);
    }
}
