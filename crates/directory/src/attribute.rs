//! Attribute type definitions and the single-namespace registry.
//!
//! A distinguishing philosophy of the directory model (paper §2.4): *all
//! attributes live in one namespace* — the definition of an attribute is
//! independent of the object classes it appears in, unlike columns in
//! relational tables. The [`AttributeRegistry`] is that namespace: it maps
//! each attribute name to exactly one definition (the paper's typing function
//! `τ : A → T`).

use std::collections::HashMap;
use std::fmt;

use crate::oid::Oid;
use crate::syntax::Syntax;

/// The well-known name of the class-membership attribute (Definition 2.1
/// requires `objectClass ∈ A` with `τ(objectClass) = string`).
pub const OBJECT_CLASS: &str = "objectclass";

/// Definition of one attribute type in the global namespace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Canonical (display) name, original case, e.g. `telephoneNumber`.
    name: String,
    /// Lowercased name used as the namespace key.
    key: String,
    /// Optional numeric OID.
    oid: Option<Oid>,
    /// The attribute's type `τ(a)`.
    syntax: Syntax,
    /// LDAP "SINGLE-VALUE" restriction (paper §6.1 "Numeric Restrictions"):
    /// when true, entries may hold at most one value for this attribute.
    single_valued: bool,
    /// Free-text description.
    description: Option<String>,
}

impl AttributeDef {
    /// Creates a multi-valued attribute definition (the LDAP default: "each
    /// entry can have multiple values for each attribute", paper §6.1).
    pub fn new(name: impl Into<String>, syntax: Syntax) -> Self {
        let name = name.into();
        let key = name.to_ascii_lowercase();
        AttributeDef { name, key, oid: None, syntax, single_valued: false, description: None }
    }

    /// Marks the attribute single-valued.
    pub fn single_valued(mut self) -> Self {
        self.single_valued = true;
        self
    }

    /// Attaches an OID.
    pub fn with_oid(mut self, oid: Oid) -> Self {
        self.oid = Some(oid);
        self
    }

    /// Attaches a description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Display name, original case.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lowercased namespace key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The attribute's syntax (`τ(a)`).
    pub fn syntax(&self) -> Syntax {
        self.syntax
    }

    /// Whether at most one value is allowed per entry.
    pub fn is_single_valued(&self) -> bool {
        self.single_valued
    }

    /// The attribute's OID, if registered with one.
    pub fn oid(&self) -> Option<&Oid> {
        self.oid.as_ref()
    }

    /// The attribute's description, if any.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }
}

/// Error returned when registering a conflicting attribute definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateAttribute {
    /// The lowercased name that was already taken.
    pub name: String,
}

impl fmt::Display for DuplicateAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attribute {:?} is already defined with a different definition", self.name)
    }
}

impl std::error::Error for DuplicateAttribute {}

/// The single global attribute namespace: name → definition.
///
/// Names are case-insensitive (`Mail` and `mail` are the same attribute).
/// `objectClass` is pre-registered (Definition 2.1 assumes it), as
/// `directoryString` which subsumes the paper's `string`.
#[derive(Debug, Clone)]
pub struct AttributeRegistry {
    defs: Vec<AttributeDef>,
    by_key: HashMap<String, usize>,
}

impl Default for AttributeRegistry {
    fn default() -> Self {
        let mut reg = AttributeRegistry { defs: Vec::new(), by_key: HashMap::new() };
        reg.register(AttributeDef::new("objectClass", Syntax::DirectoryString))
            .expect("fresh registry accepts objectClass");
        reg
    }
}

impl AttributeRegistry {
    /// A registry containing only the mandatory `objectClass` attribute.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the attribute types used by the paper's
    /// white-pages example (Figure 1) and common LDAP white-pages schema.
    pub fn white_pages() -> Self {
        let mut reg = Self::new();
        let defs = [
            AttributeDef::new("o", Syntax::DirectoryString),
            AttributeDef::new("ou", Syntax::DirectoryString),
            AttributeDef::new("uid", Syntax::DirectoryString).single_valued(),
            AttributeDef::new("name", Syntax::DirectoryString),
            AttributeDef::new("cn", Syntax::DirectoryString),
            AttributeDef::new("mail", Syntax::Ia5String),
            AttributeDef::new("uri", Syntax::Uri),
            AttributeDef::new("location", Syntax::DirectoryString),
            AttributeDef::new("telephoneNumber", Syntax::TelephoneNumber),
            AttributeDef::new("cellularPhone", Syntax::TelephoneNumber),
            AttributeDef::new("title", Syntax::DirectoryString),
            AttributeDef::new("manager", Syntax::DnSyntax),
            AttributeDef::new("employeeNumber", Syntax::Integer).single_valued(),
            AttributeDef::new("description", Syntax::DirectoryString),
        ];
        for def in defs {
            reg.register(def).expect("white-pages defaults are distinct");
        }
        reg
    }

    /// Registers a definition. Registering an identical definition twice is
    /// idempotent; a *different* definition under the same name is an error
    /// (one namespace, one meaning — paper §2.4).
    pub fn register(&mut self, def: AttributeDef) -> Result<(), DuplicateAttribute> {
        if let Some(&idx) = self.by_key.get(def.key()) {
            if self.defs[idx] == def {
                return Ok(());
            }
            return Err(DuplicateAttribute { name: def.key().to_owned() });
        }
        self.by_key.insert(def.key().to_owned(), self.defs.len());
        self.defs.push(def);
        Ok(())
    }

    /// Looks up an attribute by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<&AttributeDef> {
        if let Some(&idx) = self.by_key.get(name) {
            return Some(&self.defs[idx]);
        }
        let key = name.to_ascii_lowercase();
        self.by_key.get(&key).map(|&idx| &self.defs[idx])
    }

    /// The syntax for `name`, defaulting to case-ignore directory string for
    /// unregistered attributes (permissive-lookup LDAP convention; the
    /// content-schema check in `bschema-core` is what rejects unknown
    /// attributes when a bounding-schema says so).
    pub fn syntax_of(&self, name: &str) -> Syntax {
        self.get(name).map_or(Syntax::DirectoryString, |d| d.syntax())
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterates all definitions in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &AttributeDef> {
        self.defs.iter()
    }

    /// Number of registered attributes.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True iff only nothing is registered (cannot happen in practice:
    /// `objectClass` is always present).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_class_is_preregistered() {
        let reg = AttributeRegistry::new();
        let def = reg.get("objectClass").unwrap();
        assert_eq!(def.syntax(), Syntax::DirectoryString);
        assert_eq!(def.key(), OBJECT_CLASS);
        assert!(!def.is_single_valued());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let reg = AttributeRegistry::white_pages();
        assert_eq!(reg.get("MAIL").unwrap().name(), "mail");
        assert_eq!(reg.get("TelephoneNumber").unwrap().syntax(), Syntax::TelephoneNumber);
    }

    #[test]
    fn duplicate_identical_is_idempotent() {
        let mut reg = AttributeRegistry::new();
        let def = AttributeDef::new("mail", Syntax::Ia5String);
        reg.register(def.clone()).unwrap();
        reg.register(def).unwrap();
        assert_eq!(reg.len(), 2); // objectClass + mail
    }

    #[test]
    fn duplicate_conflicting_is_rejected() {
        let mut reg = AttributeRegistry::new();
        reg.register(AttributeDef::new("mail", Syntax::Ia5String)).unwrap();
        let err = reg.register(AttributeDef::new("Mail", Syntax::DirectoryString)).unwrap_err();
        assert_eq!(err.name, "mail");
    }

    #[test]
    fn unknown_attribute_defaults_to_directory_string() {
        let reg = AttributeRegistry::new();
        assert_eq!(reg.syntax_of("nonexistent"), Syntax::DirectoryString);
        assert!(!reg.contains("nonexistent"));
    }

    #[test]
    fn builder_methods() {
        let def = AttributeDef::new("employeeNumber", Syntax::Integer)
            .single_valued()
            .with_oid("2.16.840.1.113730.3.1.3".parse().unwrap())
            .with_description("numeric employee id");
        assert!(def.is_single_valued());
        assert_eq!(def.oid().unwrap().to_string(), "2.16.840.1.113730.3.1.3");
        assert_eq!(def.description(), Some("numeric employee id"));
    }
}
