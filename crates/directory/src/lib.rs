//! # bschema-directory
//!
//! The LDAP directory data-model substrate for the bounding-schemas
//! reproduction (*On Bounding-Schemas for LDAP Directories*, Amer-Yahia,
//! Jagadish, Lakshmanan & Srivastava, EDBT 2000).
//!
//! This crate implements §2.1 of the paper — the directory instance
//! `D = (R, class, val, N)` — together with the LDAP machinery the paper
//! assumes from its references: typed attribute values (RFC 2252 syntaxes),
//! the single attribute namespace, distinguished names (RFC 2253), and LDIF
//! interchange (RFC 2849).
//!
//! ## Layout
//!
//! * [`syntax`] / [`attribute`] — the type system `T`, `dom(t)`, and the
//!   typing function `τ : A → T` (an [`AttributeRegistry`]).
//! * [`entry`] — `val(r)` and `class(r)` per entry, with Definition 2.1(3b)'s
//!   objectClass invariant enforced structurally.
//! * [`forest`] — the relation `N` as an arena forest with lazy
//!   preorder/postorder interval numbering (the "sorted entries" the §3.2
//!   query evaluation relies on).
//! * [`instance`] — the assembled [`DirectoryInstance`] with secondary
//!   indexes ([`index`]).
//! * [`dn`] / [`ldif`] — naming and interchange.
//!
//! ## Quick start
//!
//! ```
//! use bschema_directory::{DirectoryInstance, Entry, Rdn};
//!
//! let mut dir = DirectoryInstance::white_pages();
//! let org = dir.add_named_root(
//!     Rdn::single("o", "att"),
//!     Entry::builder().class("organization").class("top").attr("o", "att").build(),
//! ).unwrap();
//! dir.add_named_child(
//!     org,
//!     Rdn::single("uid", "laks"),
//!     Entry::builder().class("person").class("top").attr("uid", "laks").build(),
//! ).unwrap();
//!
//! dir.prepare();
//! assert_eq!(dir.index().entries_with_class("person").len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribute;
pub mod dn;
pub mod entry;
pub mod forest;
pub mod index;
pub mod instance;
pub mod ldif;
pub mod oid;
pub mod syntax;

pub use attribute::{AttributeDef, AttributeRegistry, OBJECT_CLASS};
pub use dn::{Dn, Rdn};
pub use entry::{Entry, EntryBuilder};
pub use forest::{EntryId, Forest, ForestError};
pub use index::InstanceIndex;
pub use instance::{DirectoryInstance, InstanceError, SlotRow};
pub use oid::Oid;
pub use syntax::Syntax;
