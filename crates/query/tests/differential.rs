//! Differential testing: the interval-merge evaluator must agree with the
//! naive direct-semantics evaluator on arbitrary instances and queries.
//!
//! This is the correctness backbone for Theorem 3.1's reduction — if the
//! efficient evaluator is wrong, legality checking is wrong.

use bschema_directory::{DirectoryInstance, Entry, EntryId};
use bschema_query::{evaluate, evaluate_naive, Binding, EvalContext, Filter, Query};
use proptest::prelude::*;

const CLASSES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// A compact recipe for a random forest: for each entry, `None` = new root,
/// `Some(k)` = child of the k-th previously created entry (mod count).
fn instance_strategy() -> impl Strategy<Value = (DirectoryInstance, Vec<EntryId>)> {
    let node = (any::<Option<u8>>(), proptest::bits::u8::ANY);
    proptest::collection::vec(node, 1..40).prop_map(|recipe| {
        let mut dir = DirectoryInstance::default();
        let mut ids: Vec<EntryId> = Vec::new();
        for (parent_choice, class_bits) in recipe {
            let mut builder = Entry::builder().class("top");
            for (i, class) in CLASSES.iter().enumerate() {
                if class_bits & (1 << i) != 0 {
                    builder = builder.class(*class);
                }
            }
            let entry = builder.build();
            let id = match parent_choice {
                Some(k) if !ids.is_empty() => {
                    let parent = ids[k as usize % ids.len()];
                    dir.add_child_entry(parent, entry).expect("parent is live")
                }
                _ => dir.add_root_entry(entry),
            };
            ids.push(id);
        }
        dir.prepare();
        (dir, ids)
    })
}

/// Random query trees over the class atoms, depth-bounded.
fn query_strategy() -> impl Strategy<Value = Query> {
    let leaf = prop_oneof![
        proptest::sample::select(&CLASSES[..]).prop_map(Query::object_class),
        Just(Query::object_class("top")),
        Just(Query::select(Filter::True)),
        Just(Query::object_class("absent")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner).prop_flat_map(|(a, b)| {
            prop_oneof![
                Just(a.clone().with_child(b.clone())),
                Just(a.clone().with_parent(b.clone())),
                Just(a.clone().with_descendant(b.clone())),
                Just(a.clone().with_ancestor(b.clone())),
                Just(a.clone().minus(b.clone())),
                Just(a.clone().union(b.clone())),
                Just(a.intersect(b)),
            ]
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn evaluators_agree((dir, _ids) in instance_strategy(), query in query_strategy()) {
        let ctx = EvalContext::new(&dir);
        let fast = evaluate(&ctx, &query);
        let naive = evaluate_naive(&ctx, &query);
        prop_assert_eq!(fast, naive, "query {}", query);
    }

    #[test]
    fn evaluators_agree_with_delta(
        (dir, ids) in instance_strategy(),
        query in query_strategy(),
        delta_pick in any::<prop::sample::Index>(),
    ) {
        let delta_root = ids[delta_pick.index(ids.len())];
        let query = query.map_bindings(&|_| Binding::Delta);
        let ctx = EvalContext::with_delta(&dir, delta_root);
        let fast = evaluate(&ctx, &query);
        let naive = evaluate_naive(&ctx, &query);
        prop_assert_eq!(fast, naive, "query {}", query);
    }

    #[test]
    fn results_are_preorder_sorted((dir, _ids) in instance_strategy(), query in query_strategy()) {
        let ctx = EvalContext::new(&dir);
        let fast = evaluate(&ctx, &query);
        let forest = dir.forest();
        prop_assert!(bschema_query::result::is_preorder_sorted(forest, &fast));
    }

    #[test]
    fn hierarchical_results_are_subsets_of_first_argument(
        (dir, _ids) in instance_strategy(),
        a in query_strategy(),
        b in query_strategy(),
    ) {
        let ctx = EvalContext::new(&dir);
        let r1 = evaluate(&ctx, &a);
        for q in [
            a.clone().with_child(b.clone()),
            a.clone().with_parent(b.clone()),
            a.clone().with_descendant(b.clone()),
            a.clone().with_ancestor(b.clone()),
            a.clone().minus(b.clone()),
        ] {
            let r = evaluate(&ctx, &q);
            prop_assert!(r.iter().all(|id| r1.contains(id)), "query {} escaped its first argument", q);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The optimizer preserves semantics: simplified queries return the
    /// same entries on arbitrary instances.
    #[test]
    fn simplify_preserves_semantics((dir, _ids) in instance_strategy(), query in query_strategy()) {
        let ctx = EvalContext::new(&dir);
        let simplified = bschema_query::optimize::simplify(query.clone());
        prop_assert_eq!(
            evaluate(&ctx, &query),
            evaluate(&ctx, &simplified),
            "simplify changed semantics: {} vs {}", query, simplified
        );
    }

    /// Simplification with Empty bindings stamped in agrees with direct
    /// evaluation of the bound query.
    #[test]
    fn simplify_preserves_semantics_with_empty_bindings(
        (dir, _ids) in instance_strategy(),
        query in query_strategy(),
    ) {
        let bound = query.map_bindings(&|_| Binding::Empty);
        let ctx = EvalContext::new(&dir);
        let simplified = bschema_query::optimize::simplify(bound.clone());
        prop_assert_eq!(evaluate(&ctx, &bound), evaluate(&ctx, &simplified));
    }
}
