//! LDAP search operations: filter + base entry + scope.
//!
//! The paper's §1 describes the access pattern this models: "directory
//! applications retrieve entries that match (a boolean combination of)
//! conditions on individual attributes, the retrieval typically scoped to
//! some subtree of the hierarchy". The three scopes are the standard LDAP
//! ones (RFC 2251 §4.5.1): the base entry alone, its immediate children, or
//! its whole subtree.

use bschema_directory::{DirectoryInstance, Dn, EntryId};

use crate::eval::EvalContext;
use crate::filter::Filter;
use crate::result;

/// The LDAP search scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchScope {
    /// Only the base entry itself (`baseObject`).
    Base,
    /// Immediate children of the base entry, excluding it (`singleLevel`).
    OneLevel,
    /// The base entry and all its descendants (`wholeSubtree`).
    #[default]
    Subtree,
}

/// A search request. `base = None` searches the whole directory (all roots,
/// as if under a virtual super-root; scope then behaves as: `Base` → roots,
/// `OneLevel` → roots, `Subtree` → everything).
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// The entry the search is rooted at, if any.
    pub base: Option<EntryId>,
    /// How far below the base to look.
    pub scope: SearchScope,
    /// The entry condition.
    pub filter: Filter,
    /// Stop after this many hits (LDAP `sizeLimit`); `None` = unlimited.
    pub size_limit: Option<usize>,
}

impl SearchRequest {
    /// A whole-directory subtree search.
    pub fn whole_directory(filter: Filter) -> Self {
        SearchRequest { base: None, scope: SearchScope::Subtree, filter, size_limit: None }
    }

    /// A search rooted at `base`.
    pub fn under(base: EntryId, scope: SearchScope, filter: Filter) -> Self {
        SearchRequest { base: Some(base), scope, filter, size_limit: None }
    }

    /// Caps the number of results.
    pub fn with_size_limit(mut self, limit: usize) -> Self {
        self.size_limit = Some(limit);
        self
    }
}

/// Executes a search against a prepared instance. Results come back in
/// preorder (document) order, truncated at the size limit.
pub fn search(dir: &DirectoryInstance, request: &SearchRequest) -> Vec<EntryId> {
    let ctx = EvalContext::new(dir);
    let forest = dir.forest();
    let matches_filter =
        |id: EntryId| dir.entry(id).is_some_and(|e| request.filter.matches(e, dir.registry()));

    let mut out = match (request.base, request.scope) {
        (Some(base), SearchScope::Base) => {
            if matches_filter(base) {
                vec![base]
            } else {
                Vec::new()
            }
        }
        (Some(base), SearchScope::OneLevel) => {
            forest.children(base).filter(|&c| matches_filter(c)).collect()
        }
        (Some(base), SearchScope::Subtree) => {
            // Evaluate the filter globally through the indexes, then cut the
            // contiguous preorder range of the subtree — cheaper than
            // per-entry testing when the filter is selective.
            let all =
                crate::eval::evaluate(&ctx, &crate::algebra::Query::select(request.filter.clone()));
            result::restrict_to_subtree(forest, &all, base)
        }
        (None, SearchScope::Subtree) => {
            crate::eval::evaluate(&ctx, &crate::algebra::Query::select(request.filter.clone()))
        }
        (None, _) => forest.roots().filter(|&r| matches_filter(r)).collect(),
    };

    if let Some(limit) = request.size_limit {
        out.truncate(limit);
    }
    out
}

/// DN-addressed convenience: resolves `base_dn` and searches under it.
/// Returns `None` when the base DN does not name an entry.
pub fn search_dn(
    dir: &DirectoryInstance,
    base_dn: &Dn,
    scope: SearchScope,
    filter: Filter,
) -> Option<Vec<EntryId>> {
    let base = dir.lookup_dn(base_dn)?;
    Some(search(dir, &SearchRequest::under(base, scope, filter)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bschema_directory::{DirectoryInstance, Entry, Rdn};

    /// org ── labs ── {alice, db ── {bob, carol}}
    fn fixture() -> (DirectoryInstance, [EntryId; 6]) {
        let mut d = DirectoryInstance::white_pages();
        let org = d
            .add_named_root(
                Rdn::single("o", "att"),
                Entry::builder().classes(["organization", "top"]).attr("o", "att").build(),
            )
            .unwrap();
        let labs = d
            .add_named_child(
                org,
                Rdn::single("ou", "labs"),
                Entry::builder().classes(["orgUnit", "top"]).attr("ou", "labs").build(),
            )
            .unwrap();
        let alice = d
            .add_named_child(
                labs,
                Rdn::single("uid", "alice"),
                Entry::builder()
                    .classes(["person", "top"])
                    .attr("uid", "alice")
                    .attr("mail", "a@x")
                    .build(),
            )
            .unwrap();
        let db = d
            .add_named_child(
                labs,
                Rdn::single("ou", "db"),
                Entry::builder().classes(["orgUnit", "top"]).attr("ou", "db").build(),
            )
            .unwrap();
        let bob = d
            .add_named_child(
                db,
                Rdn::single("uid", "bob"),
                Entry::builder().classes(["person", "top"]).attr("uid", "bob").build(),
            )
            .unwrap();
        let carol = d
            .add_named_child(
                db,
                Rdn::single("uid", "carol"),
                Entry::builder()
                    .classes(["person", "top"])
                    .attr("uid", "carol")
                    .attr("mail", "c@x")
                    .build(),
            )
            .unwrap();
        d.prepare();
        (d, [org, labs, alice, db, bob, carol])
    }

    #[test]
    fn base_scope() {
        let (d, [org, ..]) = fixture();
        let req =
            SearchRequest::under(org, SearchScope::Base, Filter::object_class("organization"));
        assert_eq!(search(&d, &req), [org]);
        let req = SearchRequest::under(org, SearchScope::Base, Filter::object_class("person"));
        assert_eq!(search(&d, &req), []);
    }

    #[test]
    fn one_level_scope() {
        let (d, [_, labs, alice, db, ..]) = fixture();
        let req = SearchRequest::under(labs, SearchScope::OneLevel, Filter::True);
        assert_eq!(search(&d, &req), [alice, db]);
        // Does not include the base or grandchildren.
        let req = SearchRequest::under(labs, SearchScope::OneLevel, Filter::object_class("person"));
        assert_eq!(search(&d, &req), [alice]);
    }

    #[test]
    fn subtree_scope_includes_base() {
        let (d, [_, labs, alice, db, bob, carol]) = fixture();
        let req = SearchRequest::under(labs, SearchScope::Subtree, Filter::True);
        assert_eq!(search(&d, &req), [labs, alice, db, bob, carol]);
        let req = SearchRequest::under(db, SearchScope::Subtree, Filter::object_class("person"));
        assert_eq!(search(&d, &req), [bob, carol]);
    }

    #[test]
    fn whole_directory_search() {
        let (d, ids) = fixture();
        let req = SearchRequest::whole_directory(Filter::present("mail"));
        assert_eq!(search(&d, &req), [ids[2], ids[5]]);
    }

    #[test]
    fn size_limit_truncates_in_document_order() {
        let (d, [_, labs, alice, ..]) = fixture();
        let req = SearchRequest::under(labs, SearchScope::Subtree, Filter::object_class("person"))
            .with_size_limit(1);
        assert_eq!(search(&d, &req), [alice]);
    }

    #[test]
    fn dn_addressed_search() {
        let (d, [.., bob, carol]) = fixture();
        let hits = search_dn(
            &d,
            &"ou=db,ou=labs,o=att".parse().unwrap(),
            SearchScope::OneLevel,
            Filter::object_class("person"),
        )
        .expect("base DN resolves");
        assert_eq!(hits, [bob, carol]);
        assert!(
            search_dn(&d, &"o=nope".parse().unwrap(), SearchScope::Base, Filter::True).is_none()
        );
    }

    #[test]
    fn root_scopes_without_base() {
        let (d, [org, ..]) = fixture();
        let req = SearchRequest {
            base: None,
            scope: SearchScope::Base,
            filter: Filter::True,
            size_limit: None,
        };
        assert_eq!(search(&d, &req), [org]);
    }
}
