//! The hierarchical selection query algebra (after reference \[9\],
//! "Querying network directories", SIGMOD '99).
//!
//! A query denotes a set of directory entries. The paper's §3.2 uses five
//! operators, rendered there as `σ_c`, `σ_p`, `σ_d`, `σ_a` and `σ_?`:
//!
//! * **child selection** `(σc q1 q2)` — entries in `q1` having at least one
//!   child in `q2`;
//! * **parent selection** `(σp q1 q2)` — entries in `q1` whose parent is in
//!   `q2`;
//! * **descendant selection** `(σd q1 q2)` — entries in `q1` having at least
//!   one proper descendant in `q2`;
//! * **ancestor selection** `(σa q1 q2)` — entries in `q1` having at least
//!   one proper ancestor in `q2`;
//! * **minus** `(σ? q1 q2)` — entries in `q1` not in `q2`.
//!
//! Atomic selections are LDAP [`Filter`]s; union and intersection round out
//! the algebra. Each atomic selection additionally carries a [`Binding`] —
//! the Figure 5 device that lets the §4 incremental checker evaluate a
//! sub-expression against `∅`, the update delta `∆D`, or the whole updated
//! instance.

use std::fmt;

use crate::filter::Filter;

/// Which dataset an atomic selection ranges over (paper Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Binding {
    /// The whole (current) instance — `[D]` in §3, `[D ⊕ ∆D]` in Figure 5.
    #[default]
    Whole,
    /// Only entries inside the update delta subtree — `[∆D]`.
    Delta,
    /// The empty set — `[∅]`; the selection yields nothing.
    Empty,
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binding::Whole => Ok(()),
            Binding::Delta => write!(f, "[ΔD]"),
            Binding::Empty => write!(f, "[∅]"),
        }
    }
}

/// A hierarchical selection query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Atomic selection: all entries (in the bound dataset) matching the
    /// filter.
    Select {
        /// The entry-level condition.
        filter: Filter,
        /// The dataset this selection ranges over.
        binding: Binding,
    },
    /// `(σc q1 q2)` — child selection.
    Child(Box<Query>, Box<Query>),
    /// `(σp q1 q2)` — parent selection.
    Parent(Box<Query>, Box<Query>),
    /// `(σd q1 q2)` — descendant selection.
    Descendant(Box<Query>, Box<Query>),
    /// `(σa q1 q2)` — ancestor selection.
    Ancestor(Box<Query>, Box<Query>),
    /// `(σ? q1 q2)` — set difference.
    Minus(Box<Query>, Box<Query>),
    /// Set union.
    Union(Box<Query>, Box<Query>),
    /// Set intersection.
    Intersect(Box<Query>, Box<Query>),
}

impl Query {
    /// Atomic selection over the whole instance.
    pub fn select(filter: Filter) -> Query {
        Query::Select { filter, binding: Binding::Whole }
    }

    /// Atomic selection with an explicit Figure 5 binding.
    pub fn select_bound(filter: Filter, binding: Binding) -> Query {
        Query::Select { filter, binding }
    }

    /// `(objectClass=c)` — the paper's workhorse atomic selection.
    pub fn object_class(class: impl Into<String>) -> Query {
        Query::select(Filter::object_class(class))
    }

    /// `(σc self q2)`.
    pub fn with_child(self, q2: Query) -> Query {
        Query::Child(Box::new(self), Box::new(q2))
    }

    /// `(σp self q2)`.
    pub fn with_parent(self, q2: Query) -> Query {
        Query::Parent(Box::new(self), Box::new(q2))
    }

    /// `(σd self q2)`.
    pub fn with_descendant(self, q2: Query) -> Query {
        Query::Descendant(Box::new(self), Box::new(q2))
    }

    /// `(σa self q2)`.
    pub fn with_ancestor(self, q2: Query) -> Query {
        Query::Ancestor(Box::new(self), Box::new(q2))
    }

    /// `(σ? self q2)`.
    pub fn minus(self, q2: Query) -> Query {
        Query::Minus(Box::new(self), Box::new(q2))
    }

    /// Union.
    pub fn union(self, q2: Query) -> Query {
        Query::Union(Box::new(self), Box::new(q2))
    }

    /// Intersection.
    pub fn intersect(self, q2: Query) -> Query {
        Query::Intersect(Box::new(self), Box::new(q2))
    }

    /// The paper's `|Q|`: number of operators plus atomic condition sizes.
    pub fn size(&self) -> usize {
        match self {
            Query::Select { filter, .. } => filter.size(),
            Query::Child(a, b)
            | Query::Parent(a, b)
            | Query::Descendant(a, b)
            | Query::Ancestor(a, b)
            | Query::Minus(a, b)
            | Query::Union(a, b)
            | Query::Intersect(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Applies `f` to every atomic selection's binding (used by the
    /// incremental checker to stamp Figure 5 bindings onto a translated
    /// query).
    pub fn map_bindings(self, f: &impl Fn(Binding) -> Binding) -> Query {
        match self {
            Query::Select { filter, binding } => Query::Select { filter, binding: f(binding) },
            Query::Child(a, b) => {
                Query::Child(Box::new(a.map_bindings(f)), Box::new(b.map_bindings(f)))
            }
            Query::Parent(a, b) => {
                Query::Parent(Box::new(a.map_bindings(f)), Box::new(b.map_bindings(f)))
            }
            Query::Descendant(a, b) => {
                Query::Descendant(Box::new(a.map_bindings(f)), Box::new(b.map_bindings(f)))
            }
            Query::Ancestor(a, b) => {
                Query::Ancestor(Box::new(a.map_bindings(f)), Box::new(b.map_bindings(f)))
            }
            Query::Minus(a, b) => {
                Query::Minus(Box::new(a.map_bindings(f)), Box::new(b.map_bindings(f)))
            }
            Query::Union(a, b) => {
                Query::Union(Box::new(a.map_bindings(f)), Box::new(b.map_bindings(f)))
            }
            Query::Intersect(a, b) => {
                Query::Intersect(Box::new(a.map_bindings(f)), Box::new(b.map_bindings(f)))
            }
        }
    }

    /// True iff every atomic selection is bound to `∅` — the query is
    /// trivially empty without touching the instance (the Figure 5 "nothing
    /// to check" rows).
    pub fn is_trivially_empty(&self) -> bool {
        match self {
            Query::Select { binding, .. } => *binding == Binding::Empty,
            // A hierarchical/our set operator yields a subset of its first
            // argument, so an empty first argument empties the whole query.
            Query::Child(a, _)
            | Query::Parent(a, _)
            | Query::Descendant(a, _)
            | Query::Ancestor(a, _)
            | Query::Minus(a, _)
            | Query::Intersect(a, _) => a.is_trivially_empty(),
            Query::Union(a, b) => a.is_trivially_empty() && b.is_trivially_empty(),
        }
    }
}

impl fmt::Display for Query {
    /// Paper-style rendering, e.g.
    /// `(σ? (objectClass=orgGroup) (σd (objectClass=orgGroup) (objectClass=person)))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Select { filter, binding } => write!(f, "{filter}{binding}"),
            Query::Child(a, b) => write!(f, "(σc {a} {b})"),
            Query::Parent(a, b) => write!(f, "(σp {a} {b})"),
            Query::Descendant(a, b) => write!(f, "(σd {a} {b})"),
            Query::Ancestor(a, b) => write!(f, "(σa {a} {b})"),
            Query::Minus(a, b) => write!(f, "(σ? {a} {b})"),
            Query::Union(a, b) => write!(f, "(σ∪ {a} {b})"),
            Query::Intersect(a, b) => write!(f, "(σ∩ {a} {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Q1 (§3.2):
    /// `(σ? (objectClass=orgGroup) (σd (objectClass=orgGroup) (objectClass=person)))`
    fn q1() -> Query {
        Query::object_class("orgGroup")
            .minus(Query::object_class("orgGroup").with_descendant(Query::object_class("person")))
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(
            q1().to_string(),
            "(σ? (objectClass=orgGroup) (σd (objectClass=orgGroup) (objectClass=person)))"
        );
    }

    #[test]
    fn size_counts_operators_and_atoms() {
        // Minus(1) + atom(1) + Descendant(1) + atom(1) + atom(1) = 5
        assert_eq!(q1().size(), 5);
        assert_eq!(Query::object_class("c").size(), 1);
    }

    #[test]
    fn bindings_display() {
        let q = Query::select_bound(Filter::object_class("person"), Binding::Delta)
            .with_ancestor(Query::select_bound(Filter::object_class("top"), Binding::Empty));
        assert_eq!(q.to_string(), "(σa (objectClass=person)[ΔD] (objectClass=top)[∅])");
    }

    #[test]
    fn map_bindings_stamps_all_leaves() {
        let q = q1().map_bindings(&|_| Binding::Delta);
        fn all_delta(q: &Query) -> bool {
            match q {
                Query::Select { binding, .. } => *binding == Binding::Delta,
                Query::Child(a, b)
                | Query::Parent(a, b)
                | Query::Descendant(a, b)
                | Query::Ancestor(a, b)
                | Query::Minus(a, b)
                | Query::Union(a, b)
                | Query::Intersect(a, b) => all_delta(a) && all_delta(b),
            }
        }
        assert!(all_delta(&q));
    }

    #[test]
    fn trivially_empty_detection() {
        let empty = q1().map_bindings(&|_| Binding::Empty);
        assert!(empty.is_trivially_empty());
        assert!(!q1().is_trivially_empty());
        // First-argument emptiness propagates through σd.
        let q = Query::select_bound(Filter::object_class("a"), Binding::Empty)
            .with_descendant(Query::object_class("b"));
        assert!(q.is_trivially_empty());
        // ... but not through union.
        let u = Query::select_bound(Filter::object_class("a"), Binding::Empty)
            .union(Query::object_class("b"));
        assert!(!u.is_trivially_empty());
    }
}
