//! LDAP search filters: the atomic selection conditions of the query algebra.
//!
//! The paper's hierarchical selection queries bottom out in atomic
//! selections such as `(objectClass=orgGroup)` — boolean combinations of
//! conditions on individual attributes ("directory applications retrieve
//! entries that match (a boolean combination of) conditions on individual
//! attributes", §1). We implement the standard LDAP filter repertoire
//! (RFC 2254): presence, equality, substring, ordering, and `& | !`.
//!
//! Matching is *syntax-aware*: equality on a `telephoneNumber` ignores
//! separators, on a `directoryString` ignores case, etc., driven by the
//! instance's [`AttributeRegistry`].

use std::fmt;

use bschema_directory::{AttributeRegistry, Entry, Syntax};

/// A boolean filter over a single entry's attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// Matches every entry. Rendered as `(objectClass=*)`.
    True,
    /// Matches no entry. Rendered as `(!(objectClass=*))`.
    False,
    /// `(attr=*)` — the entry has at least one value for `attr`.
    Present(String),
    /// `(attr=value)` — some value of `attr` equals `value` under the
    /// attribute's matching rule.
    Equality(String, String),
    /// `(attr=initial*any*...*final)` — substring match.
    Substring {
        /// The attribute tested.
        attr: String,
        /// Required prefix, if any.
        initial: Option<String>,
        /// Required interior fragments, in order.
        any: Vec<String>,
        /// Required suffix, if any.
        finally: Option<String>,
    },
    /// `(attr>=value)` under the attribute's ordering rule.
    GreaterOrEqual(String, String),
    /// `(attr<=value)` under the attribute's ordering rule.
    LessOrEqual(String, String),
    /// `(&(f1)(f2)...)` — all sub-filters match. Empty conjunction is true.
    And(Vec<Filter>),
    /// `(|(f1)(f2)...)` — some sub-filter matches. Empty disjunction is false.
    Or(Vec<Filter>),
    /// `(!(f))` — the sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// The workhorse atomic selection of the paper: `(objectClass=c)`.
    pub fn object_class(class: impl Into<String>) -> Filter {
        Filter::Equality("objectClass".to_owned(), class.into())
    }

    /// `(attr=value)` convenience constructor.
    pub fn eq(attr: impl Into<String>, value: impl Into<String>) -> Filter {
        Filter::Equality(attr.into(), value.into())
    }

    /// `(attr=*)` convenience constructor.
    pub fn present(attr: impl Into<String>) -> Filter {
        Filter::Present(attr.into())
    }

    /// Conjunction of two filters, flattening nested `And`s.
    pub fn and(self, other: Filter) -> Filter {
        match (self, other) {
            (Filter::And(mut a), Filter::And(b)) => {
                a.extend(b);
                Filter::And(a)
            }
            (Filter::And(mut a), f) => {
                a.push(f);
                Filter::And(a)
            }
            (f, Filter::And(mut b)) => {
                b.insert(0, f);
                Filter::And(b)
            }
            (a, b) => Filter::And(vec![a, b]),
        }
    }

    /// Disjunction of two filters, flattening nested `Or`s.
    pub fn or(self, other: Filter) -> Filter {
        match (self, other) {
            (Filter::Or(mut a), Filter::Or(b)) => {
                a.extend(b);
                Filter::Or(a)
            }
            (Filter::Or(mut a), f) => {
                a.push(f);
                Filter::Or(a)
            }
            (f, Filter::Or(mut b)) => {
                b.insert(0, f);
                Filter::Or(b)
            }
            (a, b) => Filter::Or(vec![a, b]),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Filter {
        Filter::Not(Box::new(self))
    }

    /// If this filter is exactly `(objectClass=c)`, returns `c`. The
    /// evaluators use this to route through the per-class index.
    pub fn as_object_class(&self) -> Option<&str> {
        match self {
            Filter::Equality(attr, value) if attr.eq_ignore_ascii_case("objectclass") => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Number of atomic conditions — contributes to the paper's `|Q|`.
    pub fn size(&self) -> usize {
        match self {
            Filter::True
            | Filter::False
            | Filter::Present(_)
            | Filter::Equality(..)
            | Filter::Substring { .. }
            | Filter::GreaterOrEqual(..)
            | Filter::LessOrEqual(..) => 1,
            Filter::And(fs) | Filter::Or(fs) => 1 + fs.iter().map(Filter::size).sum::<usize>(),
            Filter::Not(f) => 1 + f.size(),
        }
    }

    /// Evaluates the filter against one entry, using `registry` for
    /// syntax-aware matching.
    pub fn matches(&self, entry: &Entry, registry: &AttributeRegistry) -> bool {
        match self {
            Filter::True => true,
            Filter::False => false,
            Filter::Present(attr) => entry.has_attribute(attr),
            Filter::Equality(attr, value) => {
                let syntax = registry.syntax_of(attr);
                entry.values(attr).iter().any(|v| syntax.values_match(v, value))
            }
            Filter::Substring { attr, initial, any, finally } => {
                let syntax = registry.syntax_of(attr);
                entry.values(attr).iter().any(|v| {
                    substring_match(syntax, v, initial.as_deref(), any, finally.as_deref())
                })
            }
            Filter::GreaterOrEqual(attr, value) => {
                let syntax = registry.syntax_of(attr);
                entry.values(attr).iter().any(|v| {
                    syntax.compare(v, value).is_some_and(|o| o != std::cmp::Ordering::Less)
                })
            }
            Filter::LessOrEqual(attr, value) => {
                let syntax = registry.syntax_of(attr);
                entry.values(attr).iter().any(|v| {
                    syntax.compare(v, value).is_some_and(|o| o != std::cmp::Ordering::Greater)
                })
            }
            Filter::And(fs) => fs.iter().all(|f| f.matches(entry, registry)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(entry, registry)),
            Filter::Not(f) => !f.matches(entry, registry),
        }
    }
}

fn substring_match(
    syntax: Syntax,
    value: &str,
    initial: Option<&str>,
    any: &[String],
    finally: Option<&str>,
) -> bool {
    // Normalise both sides so case-ignore syntaxes match case-insensitively.
    let v = syntax.normalize(value);
    let mut rest = v.as_str();
    if let Some(prefix) = initial {
        let prefix = syntax.normalize(prefix);
        match rest.strip_prefix(prefix.as_str()) {
            Some(r) => rest = r,
            None => return false,
        }
    }
    // Handle the suffix before interior fragments so they can't overlap it.
    if let Some(suffix) = finally {
        let suffix = syntax.normalize(suffix);
        match rest.strip_suffix(suffix.as_str()) {
            Some(r) => rest = r,
            None => return false,
        }
    }
    for fragment in any {
        let fragment = syntax.normalize(fragment);
        match rest.find(fragment.as_str()) {
            Some(pos) => rest = &rest[pos + fragment.len()..],
            None => return false,
        }
    }
    true
}

impl fmt::Display for Filter {
    /// RFC 2254 string representation, with values escaped.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::True => write!(f, "(objectClass=*)"),
            Filter::False => write!(f, "(!(objectClass=*))"),
            Filter::Present(attr) => write!(f, "({attr}=*)"),
            Filter::Equality(attr, value) => write!(f, "({attr}={})", escape_value(value)),
            Filter::Substring { attr, initial, any, finally } => {
                write!(f, "({attr}=")?;
                if let Some(i) = initial {
                    write!(f, "{}", escape_value(i))?;
                }
                write!(f, "*")?;
                for a in any {
                    write!(f, "{}*", escape_value(a))?;
                }
                if let Some(fin) = finally {
                    write!(f, "{}", escape_value(fin))?;
                }
                write!(f, ")")
            }
            Filter::GreaterOrEqual(attr, value) => write!(f, "({attr}>={})", escape_value(value)),
            Filter::LessOrEqual(attr, value) => write!(f, "({attr}<={})", escape_value(value)),
            Filter::And(fs) => {
                write!(f, "(&")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Filter::Or(fs) => {
                write!(f, "(|")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                write!(f, ")")
            }
            Filter::Not(sub) => write!(f, "(!{sub})"),
        }
    }
}

/// Escapes `* ( ) \` and NUL per RFC 2254 §4.
pub fn escape_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '*' => out.push_str("\\2a"),
            '(' => out.push_str("\\28"),
            ')' => out.push_str("\\29"),
            '\\' => out.push_str("\\5c"),
            '\0' => out.push_str("\\00"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bschema_directory::Entry;

    fn laks() -> Entry {
        Entry::builder()
            .class("researcher")
            .class("person")
            .class("top")
            .attr("uid", "laks")
            .attr("name", "Laks Lakshmanan")
            .attr("mail", "laks@cs.concordia.ca")
            .attr("mail", "laks@research.att.com")
            .attr("telephoneNumber", "+1 (514) 848-2424")
            .attr("employeeNumber", "17")
            .build()
    }

    fn reg() -> AttributeRegistry {
        AttributeRegistry::white_pages()
    }

    #[test]
    fn object_class_equality() {
        let e = laks();
        assert!(Filter::object_class("person").matches(&e, &reg()));
        assert!(Filter::object_class("PERSON").matches(&e, &reg()));
        assert!(!Filter::object_class("orgUnit").matches(&e, &reg()));
        assert_eq!(Filter::object_class("person").as_object_class(), Some("person"));
        assert_eq!(Filter::present("objectClass").as_object_class(), None);
    }

    #[test]
    fn equality_is_syntax_aware() {
        let e = laks();
        // directoryString: case/space-insensitive.
        assert!(Filter::eq("name", "laks   lakshmanan").matches(&e, &reg()));
        // telephoneNumber: separators ignored.
        assert!(Filter::eq("telephoneNumber", "+1-514-848-2424").matches(&e, &reg()));
        // ia5String (mail): case-insensitive.
        assert!(Filter::eq("mail", "LAKS@CS.CONCORDIA.CA").matches(&e, &reg()));
    }

    #[test]
    fn presence() {
        let e = laks();
        assert!(Filter::present("mail").matches(&e, &reg()));
        assert!(!Filter::present("cellularPhone").matches(&e, &reg()));
    }

    #[test]
    fn substring() {
        let e = laks();
        let f = Filter::Substring {
            attr: "mail".into(),
            initial: Some("laks@".into()),
            any: vec![],
            finally: Some(".com".into()),
        };
        assert!(f.matches(&e, &reg()));
        let g = Filter::Substring {
            attr: "name".into(),
            initial: None,
            any: vec!["AKSH".into()],
            finally: None,
        };
        assert!(g.matches(&e, &reg())); // case-ignore
        let h = Filter::Substring {
            attr: "mail".into(),
            initial: Some("dan@".into()),
            any: vec![],
            finally: None,
        };
        assert!(!h.matches(&e, &reg()));
    }

    #[test]
    fn substring_fragments_do_not_overlap() {
        let e = Entry::builder().class("top").attr("name", "abc").build();
        // initial "ab" + final "bc" would need to overlap on 'b' — no match.
        let f = Filter::Substring {
            attr: "name".into(),
            initial: Some("ab".into()),
            any: vec![],
            finally: Some("bc".into()),
        };
        assert!(!f.matches(&e, &reg()));
    }

    #[test]
    fn ordering_comparisons() {
        let e = laks();
        assert!(Filter::GreaterOrEqual("employeeNumber".into(), "9".into()).matches(&e, &reg()));
        assert!(Filter::LessOrEqual("employeeNumber".into(), "17".into()).matches(&e, &reg()));
        assert!(!Filter::LessOrEqual("employeeNumber".into(), "16".into()).matches(&e, &reg()));
    }

    #[test]
    fn boolean_combinations() {
        let e = laks();
        let f = Filter::object_class("person")
            .and(Filter::present("mail"))
            .and(Filter::object_class("orgUnit").not());
        assert!(f.matches(&e, &reg()));
        let g = Filter::object_class("orgUnit").or(Filter::eq("uid", "laks"));
        assert!(g.matches(&e, &reg()));
        assert!(Filter::And(vec![]).matches(&e, &reg())); // empty ∧ = true
        assert!(!Filter::Or(vec![]).matches(&e, &reg())); // empty ∨ = false
        assert!(Filter::True.matches(&e, &reg()));
        assert!(!Filter::False.matches(&e, &reg()));
    }

    #[test]
    fn and_or_flatten() {
        let f = Filter::present("a").and(Filter::present("b")).and(Filter::present("c"));
        assert!(matches!(&f, Filter::And(v) if v.len() == 3));
        let g = Filter::present("a").or(Filter::present("b")).or(Filter::present("c"));
        assert!(matches!(&g, Filter::Or(v) if v.len() == 3));
    }

    #[test]
    fn display_rfc2254() {
        let f = Filter::object_class("person").and(Filter::present("mail")).not();
        assert_eq!(f.to_string(), "(!(&(objectClass=person)(mail=*)))");
        assert_eq!(Filter::eq("cn", "a*b").to_string(), "(cn=a\\2ab)");
    }

    #[test]
    fn size_counts_atoms_and_connectives() {
        let f = Filter::object_class("a").and(Filter::present("b")).not();
        // Not(And(eq, present)): 1 + 1 + 1 + 1
        assert_eq!(f.size(), 4);
        assert_eq!(Filter::True.size(), 1);
    }
}
