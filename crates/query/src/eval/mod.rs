//! Query evaluation: the interval-merge evaluator (§3.2's efficient
//! strategy) and a naive nested-loop evaluator used as a differential
//! oracle and benchmark baseline.

pub mod explain;
mod interval;
mod naive;

pub use explain::{explain, Explain, ExplainNode};
pub use interval::evaluate;
pub use naive::evaluate_naive;

use crate::algebra::Query;
use bschema_directory::{DirectoryInstance, EntryId};

/// Evaluates independent queries over one shared context, returning the
/// result lists in query order (each exactly what [`evaluate`] returns).
///
/// The queries share the instance's sorted-entry index — built once by
/// [`prepare`](DirectoryInstance::prepare) — rather than re-deriving
/// per-query entry lists, and are fanned out over `threads` worker
/// threads (`0` = all available, `1` = inline on the caller's thread).
pub fn evaluate_batch(
    ctx: &EvalContext<'_>,
    queries: &[Query],
    threads: usize,
) -> Vec<Vec<EntryId>> {
    let probe = ctx.probe();
    if !probe.enabled() {
        return bschema_parallel::par_map(queries, threads, |q| evaluate(ctx, q));
    }
    bschema_parallel::par_flat_map_chunks_indexed(queries, threads, |_, chunk| {
        let chunk_start = std::time::Instant::now();
        let out: Vec<Vec<EntryId>> = chunk.iter().map(|q| evaluate(ctx, q)).collect();
        probe.add("parallel.chunks", 1);
        probe.observe("parallel.chunk_us", chunk_start.elapsed().as_micros() as u64);
        out
    })
}

/// Evaluation context: a prepared instance plus the optional update-delta
/// subtree that `Binding::Delta` selections range over, and a probe that
/// the evaluator reports per-query counters to (a no-op by default).
#[derive(Debug, Clone, Copy)]
pub struct EvalContext<'a> {
    dir: &'a DirectoryInstance,
    delta: Option<EntryId>,
    probe: &'a dyn bschema_obs::Probe,
}

impl<'a> EvalContext<'a> {
    /// Context over the whole instance.
    ///
    /// # Panics
    /// If the instance is not [`prepare`](DirectoryInstance::prepare)d.
    pub fn new(dir: &'a DirectoryInstance) -> Self {
        assert!(
            dir.is_prepared(),
            "evaluation requires a prepared instance; call DirectoryInstance::prepare()"
        );
        EvalContext { dir, delta: None, probe: bschema_obs::noop() }
    }

    /// Context with an update delta: `Binding::Delta` selections range over
    /// the subtree rooted at `delta_root` (inclusive).
    pub fn with_delta(dir: &'a DirectoryInstance, delta_root: EntryId) -> Self {
        let ctx = EvalContext::new(dir);
        assert!(dir.contains(delta_root), "delta root must be a live entry");
        EvalContext { delta: Some(delta_root), ..ctx }
    }

    /// Attaches an instrumentation probe; evaluation behaviour is
    /// unchanged, only counters/histograms are recorded through it.
    pub fn with_probe(self, probe: &'a dyn bschema_obs::Probe) -> Self {
        EvalContext { probe, ..self }
    }

    /// The instance under evaluation.
    pub fn instance(&self) -> &'a DirectoryInstance {
        self.dir
    }

    /// The delta subtree root, if any.
    pub fn delta(&self) -> Option<EntryId> {
        self.delta
    }

    /// The attached instrumentation probe.
    pub fn probe(&self) -> &'a dyn bschema_obs::Probe {
        self.probe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{Binding, Query};
    use crate::filter::Filter;
    use bschema_directory::{DirectoryInstance, Entry};

    /// Builds the paper's Figure 1 instance.
    pub(crate) fn figure1() -> (DirectoryInstance, [EntryId; 6]) {
        let mut d = DirectoryInstance::white_pages();
        let att = d.add_root_entry(
            Entry::builder()
                .classes(["organization", "orgGroup", "online", "top"])
                .attr("o", "att")
                .attr("uri", "http://www.att.com/")
                .build(),
        );
        let labs = d
            .add_child_entry(
                att,
                Entry::builder()
                    .classes(["orgUnit", "orgGroup", "top"])
                    .attr("ou", "attLabs")
                    .attr("location", "FP")
                    .build(),
            )
            .unwrap();
        let armstrong = d
            .add_child_entry(
                labs,
                Entry::builder()
                    .classes(["staffMember", "person", "top"])
                    .attr("uid", "armstrong")
                    .attr("name", "m armstrong")
                    .build(),
            )
            .unwrap();
        let db = d
            .add_child_entry(
                labs,
                Entry::builder()
                    .classes(["orgUnit", "orgGroup", "top"])
                    .attr("ou", "databases")
                    .build(),
            )
            .unwrap();
        let laks = d
            .add_child_entry(
                db,
                Entry::builder()
                    .classes(["researcher", "facultyMember", "person", "online", "top"])
                    .attr("uid", "laks")
                    .attr("name", "laks lakshmanan")
                    .attr("mail", "laks@cs.concordia.ca")
                    .attr("mail", "laks@research.att.com")
                    .build(),
            )
            .unwrap();
        let suciu = d
            .add_child_entry(
                db,
                Entry::builder()
                    .classes(["researcher", "person", "top"])
                    .attr("uid", "suciu")
                    .attr("name", "dan suciu")
                    .build(),
            )
            .unwrap();
        d.prepare();
        (d, [att, labs, armstrong, db, laks, suciu])
    }

    /// Both evaluators agree on a battery of queries over Figure 1.
    #[test]
    fn evaluators_agree_on_figure1() {
        let (d, _) = figure1();
        let ctx = EvalContext::new(&d);
        let queries = [
            Query::object_class("person"),
            Query::object_class("orgGroup"),
            Query::object_class("nonexistent"),
            Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
            Query::object_class("orgGroup").minus(
                Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
            ),
            Query::object_class("person").with_ancestor(Query::object_class("organization")),
            Query::object_class("person").with_parent(Query::object_class("orgUnit")),
            Query::object_class("orgUnit").with_child(Query::object_class("person")),
            Query::select(Filter::present("mail")),
            Query::object_class("person").intersect(Query::object_class("online")),
            Query::object_class("orgUnit").union(Query::object_class("organization")),
            Query::select(Filter::object_class("person").and(Filter::present("mail"))),
        ];
        for q in &queries {
            assert_eq!(evaluate(&ctx, q), evaluate_naive(&ctx, q), "query {q}");
        }
    }

    /// The paper's Q1 is empty on the legal Figure 1 instance: every
    /// orgGroup has a person descendant.
    #[test]
    fn paper_q1_is_empty_on_figure1() {
        let (d, _) = figure1();
        let ctx = EvalContext::new(&d);
        let q1 = Query::object_class("orgGroup")
            .minus(Query::object_class("orgGroup").with_descendant(Query::object_class("person")));
        assert!(evaluate(&ctx, &q1).is_empty());
    }

    /// The paper's Q2 `(σc (objectClass=person) (objectClass=top))` is empty:
    /// no person has a child.
    #[test]
    fn paper_q2_is_empty_on_figure1() {
        let (d, _) = figure1();
        let ctx = EvalContext::new(&d);
        let q2 = Query::object_class("person").with_child(Query::object_class("top"));
        assert!(evaluate(&ctx, &q2).is_empty());
    }

    /// The paper's Q3 `(objectClass=orgUnit)` is non-empty.
    #[test]
    fn paper_q3_is_nonempty_on_figure1() {
        let (d, [_, labs, _, db, ..]) = figure1();
        let ctx = EvalContext::new(&d);
        let q3 = Query::object_class("orgUnit");
        assert_eq!(evaluate(&ctx, &q3), vec![labs, db]);
    }

    #[test]
    fn hierarchical_selection_semantics() {
        let (d, [att, labs, armstrong, db, laks, suciu]) = figure1();
        let ctx = EvalContext::new(&d);
        // orgGroups with a person descendant: att, labs, db.
        let q = Query::object_class("orgGroup").with_descendant(Query::object_class("person"));
        assert_eq!(evaluate(&ctx, &q), vec![att, labs, db]);
        // persons with an orgUnit parent: armstrong (labs), laks, suciu (db).
        let q = Query::object_class("person").with_parent(Query::object_class("orgUnit"));
        assert_eq!(evaluate(&ctx, &q), vec![armstrong, laks, suciu]);
        // persons with an organization ancestor: all three.
        let q = Query::object_class("person").with_ancestor(Query::object_class("organization"));
        assert_eq!(evaluate(&ctx, &q), vec![armstrong, laks, suciu]);
        // orgUnits with an orgUnit descendant: only labs.
        let q = Query::object_class("orgUnit").with_descendant(Query::object_class("orgUnit"));
        assert_eq!(evaluate(&ctx, &q), vec![labs]);
        // ancestor/descendant are proper: labs is not its own descendant.
        let q = Query::object_class("top").with_ancestor(Query::object_class("top"));
        assert_eq!(evaluate(&ctx, &q), vec![labs, armstrong, db, laks, suciu]);
    }

    #[test]
    fn delta_binding_restricts_to_subtree() {
        let (d, [_, _, _, db, laks, suciu]) = figure1();
        let ctx = EvalContext::with_delta(&d, db);
        let q = Query::select_bound(Filter::object_class("person"), Binding::Delta);
        assert_eq!(evaluate(&ctx, &q), vec![laks, suciu]);
        assert_eq!(evaluate_naive(&ctx, &q), vec![laks, suciu]);
        let q_top = Query::select_bound(Filter::object_class("top"), Binding::Delta);
        assert_eq!(evaluate(&ctx, &q_top), vec![db, laks, suciu]); // inclusive of root
    }

    #[test]
    fn empty_binding_yields_nothing() {
        let (d, _) = figure1();
        let ctx = EvalContext::new(&d);
        let q = Query::select_bound(Filter::True, Binding::Empty);
        assert!(evaluate(&ctx, &q).is_empty());
        assert!(evaluate_naive(&ctx, &q).is_empty());
    }

    #[test]
    #[should_panic(expected = "prepared")]
    fn unprepared_instance_panics() {
        let d = DirectoryInstance::default();
        let _ = EvalContext::new(&d);
    }

    #[test]
    #[should_panic(expected = "delta root")]
    fn delta_requires_live_root() {
        let mut d = DirectoryInstance::default();
        let r = d.add_root_entry(Entry::builder().class("top").build());
        d.remove_leaf(r).unwrap();
        d.prepare();
        let _ = EvalContext::with_delta(&d, r);
    }
}
