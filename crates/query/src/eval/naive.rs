//! Naive nested-loop evaluator.
//!
//! Implements the operator semantics directly by walking the forest —
//! O(|D|²) for descendant/ancestor selection. It exists for two reasons:
//! as the differential-testing oracle for the interval evaluator, and as
//! the quadratic baseline the §3.2 discussion contrasts the efficient
//! strategy against (see the `query_eval` benchmark).

use std::collections::HashSet;

use bschema_directory::EntryId;

use super::EvalContext;
use crate::algebra::{Binding, Query};
use crate::filter::Filter;

/// Evaluates `query` by direct semantics, returning entries sorted by
/// preorder rank (so results are comparable with [`super::evaluate`]).
pub fn evaluate_naive(ctx: &EvalContext<'_>, query: &Query) -> Vec<EntryId> {
    let mut out: Vec<EntryId> = eval_set(ctx, query).into_iter().collect();
    let forest = ctx.instance().forest();
    out.sort_unstable_by_key(|&id| forest.pre(id));
    out
}

fn eval_set(ctx: &EvalContext<'_>, query: &Query) -> HashSet<EntryId> {
    let dir = ctx.instance();
    let forest = dir.forest();
    match query {
        Query::Select { filter, binding } => select(ctx, filter, *binding),
        Query::Child(a, b) => {
            let (r1, r2) = (eval_set(ctx, a), eval_set(ctx, b));
            r1.into_iter().filter(|&e1| forest.children(e1).any(|c| r2.contains(&c))).collect()
        }
        Query::Parent(a, b) => {
            let (r1, r2) = (eval_set(ctx, a), eval_set(ctx, b));
            r1.into_iter()
                .filter(|&e1| forest.parent(e1).is_some_and(|p| r2.contains(&p)))
                .collect()
        }
        Query::Descendant(a, b) => {
            let (r1, r2) = (eval_set(ctx, a), eval_set(ctx, b));
            r1.into_iter().filter(|&e1| forest.descendants(e1).any(|d| r2.contains(&d))).collect()
        }
        Query::Ancestor(a, b) => {
            let (r1, r2) = (eval_set(ctx, a), eval_set(ctx, b));
            r1.into_iter().filter(|&e1| forest.ancestors(e1).any(|anc| r2.contains(&anc))).collect()
        }
        Query::Minus(a, b) => {
            let (r1, r2) = (eval_set(ctx, a), eval_set(ctx, b));
            r1.difference(&r2).copied().collect()
        }
        Query::Union(a, b) => {
            let (r1, r2) = (eval_set(ctx, a), eval_set(ctx, b));
            r1.union(&r2).copied().collect()
        }
        Query::Intersect(a, b) => {
            let (r1, r2) = (eval_set(ctx, a), eval_set(ctx, b));
            r1.intersection(&r2).copied().collect()
        }
    }
}

fn select(ctx: &EvalContext<'_>, filter: &Filter, binding: Binding) -> HashSet<EntryId> {
    let dir = ctx.instance();
    match binding {
        Binding::Empty => HashSet::new(),
        Binding::Whole => dir
            .iter()
            .filter(|(_, e)| filter.matches(e, dir.registry()))
            .map(|(id, _)| id)
            .collect(),
        Binding::Delta => {
            let root =
                ctx.delta().expect("Binding::Delta requires an EvalContext with a delta subtree");
            let forest = dir.forest();
            std::iter::once(root)
                .chain(forest.descendants(root))
                .filter(|&id| dir.entry(id).is_some_and(|e| filter.matches(e, dir.registry())))
                .collect()
        }
    }
}
