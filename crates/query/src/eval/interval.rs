//! The efficient evaluator: interval merge joins over preorder-sorted lists.
//!
//! Every operator runs in time linear in its input lists (plus, for
//! child/parent selection, one bitmap over the entry arena), so a query `Q`
//! evaluates in O(|Q|·|D|) — the bound §3.2 inherits from reference [9] and
//! that Theorem 3.1's legality test builds on.

use std::borrow::Cow;

use bschema_directory::{EntryId, Forest};

use super::EvalContext;
use crate::algebra::{Binding, Query};
use crate::filter::Filter;
use crate::result;

/// Evaluates `query`, returning matching entries sorted by preorder rank.
pub fn evaluate(ctx: &EvalContext<'_>, query: &Query) -> Vec<EntryId> {
    let result = eval_cow(ctx, query).into_owned();
    let probe = ctx.probe();
    if probe.enabled() {
        probe.add("query.evaluated", 1);
        probe.observe("query.result_size", result.len() as u64);
    }
    result
}

/// Core evaluator. Atomic indexable selections borrow the instance's
/// sorted-entry index slices directly (`Cow::Borrowed`) instead of
/// re-deriving an owned copy per query, so the index built once by
/// [`prepare`](bschema_directory::DirectoryInstance::prepare) is shared
/// across every query evaluated against the instance — the operators
/// only ever read `&[EntryId]`.
pub(crate) fn eval_cow<'a>(ctx: &EvalContext<'a>, query: &Query) -> Cow<'a, [EntryId]> {
    let forest = ctx.instance().forest();
    match query {
        Query::Select { filter, binding } => eval_select(ctx, filter, *binding),
        Query::Child(a, b) => {
            let (r1, r2) = (eval_cow(ctx, a), eval_cow(ctx, b));
            Cow::Owned(child_select(forest, &r1, &r2))
        }
        Query::Parent(a, b) => {
            let (r1, r2) = (eval_cow(ctx, a), eval_cow(ctx, b));
            Cow::Owned(parent_select(forest, &r1, &r2))
        }
        Query::Descendant(a, b) => {
            let (r1, r2) = (eval_cow(ctx, a), eval_cow(ctx, b));
            Cow::Owned(descendant_select(forest, &r1, &r2))
        }
        Query::Ancestor(a, b) => {
            let (r1, r2) = (eval_cow(ctx, a), eval_cow(ctx, b));
            Cow::Owned(ancestor_select(forest, &r1, &r2))
        }
        Query::Minus(a, b) => {
            let (r1, r2) = (eval_cow(ctx, a), eval_cow(ctx, b));
            Cow::Owned(result::minus(forest, &r1, &r2))
        }
        Query::Union(a, b) => {
            let (r1, r2) = (eval_cow(ctx, a), eval_cow(ctx, b));
            Cow::Owned(result::union(forest, &r1, &r2))
        }
        Query::Intersect(a, b) => {
            let (r1, r2) = (eval_cow(ctx, a), eval_cow(ctx, b));
            Cow::Owned(result::intersect(forest, &r1, &r2))
        }
    }
}

/// Atomic selection: route through the class / presence indexes when the
/// filter shape allows, otherwise scan; then apply the Figure 5 binding.
fn eval_select<'a>(ctx: &EvalContext<'a>, filter: &Filter, binding: Binding) -> Cow<'a, [EntryId]> {
    if binding == Binding::Empty {
        return Cow::Owned(Vec::new());
    }
    let base = eval_filter_whole(ctx, filter);
    match binding {
        Binding::Whole => base,
        Binding::Delta => {
            let root =
                ctx.delta().expect("Binding::Delta requires an EvalContext with a delta subtree");
            Cow::Owned(result::restrict_to_subtree(ctx.instance().forest(), &base, root))
        }
        Binding::Empty => unreachable!("handled above"),
    }
}

fn eval_filter_whole<'a>(ctx: &EvalContext<'a>, filter: &Filter) -> Cow<'a, [EntryId]> {
    let dir = ctx.instance();
    let index = dir.index();
    match filter {
        Filter::True => {
            index_reused(ctx);
            Cow::Borrowed(index.all_entries())
        }
        Filter::False => Cow::Owned(Vec::new()),
        Filter::Present(attr) => {
            index_reused(ctx);
            Cow::Borrowed(index.entries_with_attribute(attr))
        }
        Filter::Equality(..) if filter.as_object_class().is_some() => {
            let class = filter.as_object_class().expect("just checked");
            index_reused(ctx);
            Cow::Borrowed(index.entries_with_class(class))
        }
        Filter::And(subs) => {
            // Seed from the most selective indexable conjunct, then
            // post-filter with the rest.
            let seed = subs
                .iter()
                .filter_map(|f| {
                    f.as_object_class().map(|c| index.entries_with_class(c)).or_else(|| match f {
                        Filter::Present(a) => Some(index.entries_with_attribute(a)),
                        _ => None,
                    })
                })
                .min_by_key(|list| list.len());
            match seed {
                Some(list) => {
                    index_reused(ctx);
                    Cow::Owned(
                        list.iter()
                            .copied()
                            .filter(|&id| {
                                let entry = dir.entry(id).expect("indexed entries are live");
                                subs.iter().all(|f| f.matches(entry, dir.registry()))
                            })
                            .collect(),
                    )
                }
                None => Cow::Owned(scan(ctx, filter)),
            }
        }
        _ => Cow::Owned(scan(ctx, filter)),
    }
}

/// Counts a selection answered from the prepared preorder index (built
/// once, shared `Cow::Borrowed`-style across queries).
fn index_reused(ctx: &EvalContext<'_>) {
    let probe = ctx.probe();
    if probe.enabled() {
        probe.add("query.index_reused", 1);
    }
}

fn scan(ctx: &EvalContext<'_>, filter: &Filter) -> Vec<EntryId> {
    let dir = ctx.instance();
    let probe = ctx.probe();
    if probe.enabled() {
        probe.add("query.index_scan", 1);
    }
    dir.index()
        .all_entries()
        .iter()
        .copied()
        .filter(|&id| {
            let entry = dir.entry(id).expect("indexed entries are live");
            filter.matches(entry, dir.registry())
        })
        .collect()
}

/// `(σc r1 r2)`: members of `r1` with at least one child in `r2`.
/// O(|r1| + |r2|) plus a bitmap over the arena.
pub(crate) fn child_select(forest: &Forest, r1: &[EntryId], r2: &[EntryId]) -> Vec<EntryId> {
    let mut has_child_in_r2 = vec![false; forest.slot_bound()];
    for &e2 in r2 {
        if let Some(p) = forest.parent(e2) {
            has_child_in_r2[p.index()] = true;
        }
    }
    r1.iter().copied().filter(|e1| has_child_in_r2[e1.index()]).collect()
}

/// `(σp r1 r2)`: members of `r1` whose parent is in `r2`.
pub(crate) fn parent_select(forest: &Forest, r1: &[EntryId], r2: &[EntryId]) -> Vec<EntryId> {
    let mut in_r2 = vec![false; forest.slot_bound()];
    for &e2 in r2 {
        in_r2[e2.index()] = true;
    }
    r1.iter().copied().filter(|&e1| forest.parent(e1).is_some_and(|p| in_r2[p.index()])).collect()
}

/// `(σd r1 r2)`: members of `r1` with at least one **proper** descendant in
/// `r2`. Stack-based interval merge: both lists are preorder-sorted; each
/// `r1` node is pushed while open and marked the moment an `r2` node falls
/// inside its interval. O(|r1| + |r2|) plus a bitmap.
pub(crate) fn descendant_select(forest: &Forest, r1: &[EntryId], r2: &[EntryId]) -> Vec<EntryId> {
    if r1.is_empty() || r2.is_empty() {
        return Vec::new();
    }
    let mut marked = vec![false; forest.slot_bound()];
    let mut stack: Vec<EntryId> = Vec::new();
    let mut i = 0;
    for &e2 in r2 {
        let p2 = forest.pre(e2);
        // Open every r1 interval starting before e2.
        while i < r1.len() && forest.pre(r1[i]) < p2 {
            let x = r1[i];
            while stack.last().is_some_and(|&top| forest.end(top) < forest.pre(x)) {
                stack.pop();
            }
            stack.push(x);
            i += 1;
        }
        // Close intervals ending before e2.
        while stack.last().is_some_and(|&top| forest.end(top) < p2) {
            stack.pop();
        }
        // Every remaining interval opened strictly before e2 and ends at or
        // after it, hence properly contains it: mark and drain (marking is
        // idempotent, so draining keeps the pass linear).
        for x in stack.drain(..) {
            marked[x.index()] = true;
        }
    }
    r1.iter().copied().filter(|e1| marked[e1.index()]).collect()
}

/// `(σa r1 r2)`: members of `r1` with at least one **proper** ancestor in
/// `r2`. Symmetric stack merge over open `r2` intervals. O(|r1| + |r2|).
pub(crate) fn ancestor_select(forest: &Forest, r1: &[EntryId], r2: &[EntryId]) -> Vec<EntryId> {
    if r1.is_empty() || r2.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut stack: Vec<EntryId> = Vec::new();
    let mut j = 0;
    for &e1 in r1 {
        let p1 = forest.pre(e1);
        // Open every r2 interval starting strictly before e1.
        while j < r2.len() && forest.pre(r2[j]) < p1 {
            let x = r2[j];
            while stack.last().is_some_and(|&top| forest.end(top) < forest.pre(x)) {
                stack.pop();
            }
            stack.push(x);
            j += 1;
        }
        // Close intervals ending before e1.
        while stack.last().is_some_and(|&top| forest.end(top) < p1) {
            stack.pop();
        }
        if !stack.is_empty() {
            out.push(e1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bschema_directory::Forest;

    /// Two-root forest:
    /// r1 ── a ── b        r2 ── c
    ///        └─ d
    fn forest() -> (Forest, [EntryId; 6]) {
        let mut f = Forest::new();
        let r1 = f.add_root();
        let a = f.add_child(r1).unwrap();
        let b = f.add_child(a).unwrap();
        let d = f.add_child(a).unwrap();
        let r2 = f.add_root();
        let c = f.add_child(r2).unwrap();
        f.ensure_numbered();
        (f, [r1, a, b, d, r2, c])
    }

    #[test]
    fn descendant_select_marks_all_open_ancestors() {
        let (f, [r1, a, b, d, r2, c]) = forest();
        // Who (among everyone) has b as a descendant? r1 and a.
        let all: Vec<EntryId> = f.iter().collect();
        assert_eq!(descendant_select(&f, &all, &[b]), [r1, a]);
        // Multiple targets across roots.
        assert_eq!(descendant_select(&f, &all, &[d, c]), [r1, a, r2]);
        // Proper: b has no descendant in {b}.
        assert_eq!(descendant_select(&f, &[b], &[b]), []);
    }

    #[test]
    fn ancestor_select_checks_open_stack() {
        let (f, [r1, a, b, d, r2, c]) = forest();
        let all: Vec<EntryId> = f.iter().collect();
        assert_eq!(ancestor_select(&f, &all, &[a]), [b, d]);
        assert_eq!(ancestor_select(&f, &all, &[r1, r2]), [a, b, d, c]);
        // Proper: a is not its own ancestor.
        assert_eq!(ancestor_select(&f, &[a], &[a]), []);
    }

    #[test]
    fn child_and_parent_select() {
        let (f, [r1, a, b, d, r2, c]) = forest();
        let all: Vec<EntryId> = f.iter().collect();
        assert_eq!(child_select(&f, &all, &[b, d]), [a]);
        assert_eq!(child_select(&f, &all, &[a, c]), [r1, r2]);
        assert_eq!(parent_select(&f, &all, &[a]), [b, d]);
        assert_eq!(parent_select(&f, &[b], &[r1]), []);
    }

    #[test]
    fn empty_inputs() {
        let (f, _) = forest();
        let all: Vec<EntryId> = f.iter().collect();
        assert_eq!(descendant_select(&f, &[], &all), []);
        assert_eq!(descendant_select(&f, &all, &[]), []);
        assert_eq!(ancestor_select(&f, &[], &all), []);
        assert_eq!(ancestor_select(&f, &all, &[]), []);
    }
}
