//! EXPLAIN: evaluate a query while recording its evaluation plan.
//!
//! The paper's efficiency argument (§3.2, Theorem 3.1) is about *how*
//! a Figure 4 query is evaluated, not just what it returns: atomic
//! selections reuse the preorder index built once by
//! [`prepare`](bschema_directory::DirectoryInstance::prepare), the
//! hierarchical operators are linear merges over the candidate lists,
//! and the whole query costs O(|Q|·|D|). [`explain`] makes that
//! concrete for one query on one instance: it mirrors the interval
//! evaluator step for step and returns both the (identical) result and
//! an [`ExplainNode`] tree recording, per step, the access path taken
//! (index reused, index-seeded scan, or full scan), the candidate-set
//! sizes flowing in, and entries scanned vs. matched.

use std::borrow::Cow;

use bschema_directory::{EntryId, Forest};
use bschema_obs::json;

use super::interval::{ancestor_select, child_select, descendant_select, parent_select};
use super::EvalContext;
use crate::algebra::{Binding, Query};
use crate::filter::Filter;
use crate::result;

/// How one plan step touched the instance.
///
/// The values mirror the evaluator's three atomic access paths plus the
/// two merge families; [`ExplainNode::access`] carries them as stable
/// strings so text and JSON renderings can be pinned by tests.
pub mod access {
    /// Answered directly from a prepared index slice (shared borrow).
    pub const INDEX_REUSED: &str = "index-reused";
    /// Seeded from the most selective index slice, then post-filtered.
    pub const INDEX_SEEDED: &str = "index-seeded";
    /// Full scan over every live entry.
    pub const SCAN: &str = "scan";
    /// Statically empty (`Filter::False` or a `[∅]` binding).
    pub const EMPTY: &str = "empty";
    /// Child/parent selection: one bitmap over the arena + a filter pass.
    pub const BITMAP_MERGE: &str = "bitmap-merge";
    /// Descendant/ancestor selection: stack-based interval merge.
    pub const INTERVAL_MERGE: &str = "interval-merge";
    /// Minus/union/intersect over preorder-sorted lists.
    pub const LIST_MERGE: &str = "list-merge";
}

/// One step of an evaluation plan.
#[derive(Debug, Clone)]
pub struct ExplainNode {
    /// Operator label: the atomic filter (with binding) for leaves, the
    /// paper's operator glyph (`σc`, `σd`, ...) for internal nodes.
    pub op: String,
    /// Access path taken — one of the [`access`] constants.
    pub access: &'static str,
    /// Candidate-set sizes flowing into this step (child result sizes;
    /// empty for leaves).
    pub candidates: Vec<usize>,
    /// Entries this step examined: the index-slice / seed / scan length
    /// for leaves, the sum of candidate list lengths for merges.
    pub scanned: usize,
    /// Entries this step produced.
    pub matched: usize,
    /// Sub-plans, in operand order.
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// Sum of `scanned` over this node and all descendants.
    pub fn scanned_total(&self) -> usize {
        self.scanned + self.children.iter().map(ExplainNode::scanned_total).sum::<usize>()
    }

    /// Renders this step (and its sub-plans) as indented text lines.
    fn render_into(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.op);
        out.push_str(&format!(" [{}]", self.access));
        if !self.candidates.is_empty() {
            let sizes: Vec<String> = self.candidates.iter().map(usize::to_string).collect();
            out.push_str(&format!(" candidates={}", sizes.join("+")));
        }
        out.push_str(&format!(" scanned={} matched={}\n", self.scanned, self.matched));
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }

    /// Renders the step as one JSON object.
    pub fn to_json(&self) -> String {
        let candidates: Vec<String> = self.candidates.iter().map(usize::to_string).collect();
        let mut out = format!(
            "{{\"op\":{},\"access\":{},\"candidates\":[{}],\"scanned\":{},\"matched\":{},\"children\":[",
            json::escape(&self.op),
            json::escape(self.access),
            candidates.join(","),
            self.scanned,
            self.matched,
        );
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&child.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// A query's result together with the plan that produced it.
#[derive(Debug, Clone)]
pub struct Explain {
    /// Paper-style rendering of the explained query.
    pub query: String,
    /// The result list — identical to what [`evaluate`](super::evaluate)
    /// returns for the same context and query.
    pub result: Vec<EntryId>,
    /// The recorded plan, rooted at the query's outermost operator.
    pub plan: ExplainNode,
}

impl Explain {
    /// Total entries scanned across every plan step.
    pub fn scanned(&self) -> usize {
        self.plan.scanned_total()
    }

    /// Result size.
    pub fn matched(&self) -> usize {
        self.result.len()
    }

    /// Renders the plan as indented text, one line per step, with a
    /// query header and a totals footer.
    pub fn render_text(&self) -> String {
        let mut out = format!("Q: {}\n", self.query);
        self.plan.render_into(0, &mut out);
        out.push_str(&format!("total scanned={} matched={}\n", self.scanned(), self.matched()));
        out
    }

    /// Renders the whole report as one JSON object:
    /// `{"query":...,"scanned":N,"matched":N,"plan":{...}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"query\":{},\"scanned\":{},\"matched\":{},\"plan\":{}}}",
            json::escape(&self.query),
            self.scanned(),
            self.matched(),
            self.plan.to_json()
        )
    }
}

/// Evaluates `query` exactly as [`evaluate`](super::evaluate) would,
/// additionally recording the evaluation plan. The result list is
/// byte-identical to the plain evaluator's; no probe counters are
/// emitted (EXPLAIN is a diagnostic read, not a measured workload).
pub fn explain(ctx: &EvalContext<'_>, query: &Query) -> Explain {
    let (result, plan) = explain_query(ctx, query);
    Explain { query: query.to_string(), result: result.into_owned(), plan }
}

fn explain_query<'a>(ctx: &EvalContext<'a>, query: &Query) -> (Cow<'a, [EntryId]>, ExplainNode) {
    let forest = ctx.instance().forest();
    match query {
        Query::Select { filter, binding } => explain_select(ctx, filter, *binding),
        Query::Child(a, b) => binary(ctx, "σc", access::BITMAP_MERGE, a, b, child_select),
        Query::Parent(a, b) => binary(ctx, "σp", access::BITMAP_MERGE, a, b, parent_select),
        Query::Descendant(a, b) => {
            binary(ctx, "σd", access::INTERVAL_MERGE, a, b, descendant_select)
        }
        Query::Ancestor(a, b) => binary(ctx, "σa", access::INTERVAL_MERGE, a, b, ancestor_select),
        Query::Minus(a, b) => {
            binary(ctx, "σ?", access::LIST_MERGE, a, b, |_, r1, r2| result::minus(forest, r1, r2))
        }
        Query::Union(a, b) => binary(ctx, "σ∪", access::LIST_MERGE, a, b, |_, r1, r2| {
            result::union(forest, r1, r2)
        }),
        Query::Intersect(a, b) => binary(ctx, "σ∩", access::LIST_MERGE, a, b, |_, r1, r2| {
            result::intersect(forest, r1, r2)
        }),
    }
}

fn binary<'a>(
    ctx: &EvalContext<'a>,
    op: &str,
    access: &'static str,
    a: &Query,
    b: &Query,
    merge: impl Fn(&Forest, &[EntryId], &[EntryId]) -> Vec<EntryId>,
) -> (Cow<'a, [EntryId]>, ExplainNode) {
    let (r1, n1) = explain_query(ctx, a);
    let (r2, n2) = explain_query(ctx, b);
    let out = merge(ctx.instance().forest(), &r1, &r2);
    let node = ExplainNode {
        op: op.to_owned(),
        access,
        candidates: vec![r1.len(), r2.len()],
        scanned: r1.len() + r2.len(),
        matched: out.len(),
        children: vec![n1, n2],
    };
    (Cow::Owned(out), node)
}

/// Mirrors `eval_select`: resolve the filter through the whole-instance
/// access paths, then apply the Figure 5 binding.
fn explain_select<'a>(
    ctx: &EvalContext<'a>,
    filter: &Filter,
    binding: Binding,
) -> (Cow<'a, [EntryId]>, ExplainNode) {
    let op = format!("{filter}{binding}");
    let leaf = |access, scanned, matched| ExplainNode {
        op: op.clone(),
        access,
        candidates: Vec::new(),
        scanned,
        matched,
        children: Vec::new(),
    };
    if binding == Binding::Empty {
        return (Cow::Owned(Vec::new()), leaf(access::EMPTY, 0, 0));
    }
    let (base, access, scanned) = explain_filter_whole(ctx, filter);
    let result = match binding {
        Binding::Whole => base,
        Binding::Delta => {
            let root =
                ctx.delta().expect("Binding::Delta requires an EvalContext with a delta subtree");
            Cow::Owned(result::restrict_to_subtree(ctx.instance().forest(), &base, root))
        }
        Binding::Empty => unreachable!("handled above"),
    };
    let node = leaf(access, scanned, result.len());
    (result, node)
}

/// Mirrors `eval_filter_whole`, additionally reporting the access path
/// and how many entries it examined.
fn explain_filter_whole<'a>(
    ctx: &EvalContext<'a>,
    filter: &Filter,
) -> (Cow<'a, [EntryId]>, &'static str, usize) {
    let dir = ctx.instance();
    let index = dir.index();
    match filter {
        Filter::True => {
            let list = index.all_entries();
            (Cow::Borrowed(list), access::INDEX_REUSED, list.len())
        }
        Filter::False => (Cow::Owned(Vec::new()), access::EMPTY, 0),
        Filter::Present(attr) => {
            let list = index.entries_with_attribute(attr);
            (Cow::Borrowed(list), access::INDEX_REUSED, list.len())
        }
        Filter::Equality(..) if filter.as_object_class().is_some() => {
            let class = filter.as_object_class().expect("just checked");
            let list = index.entries_with_class(class);
            (Cow::Borrowed(list), access::INDEX_REUSED, list.len())
        }
        Filter::And(subs) => {
            let seed = subs
                .iter()
                .filter_map(|f| {
                    f.as_object_class().map(|c| index.entries_with_class(c)).or_else(|| match f {
                        Filter::Present(a) => Some(index.entries_with_attribute(a)),
                        _ => None,
                    })
                })
                .min_by_key(|list| list.len());
            match seed {
                Some(list) => {
                    let out: Vec<EntryId> = list
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let entry = dir.entry(id).expect("indexed entries are live");
                            subs.iter().all(|f| f.matches(entry, dir.registry()))
                        })
                        .collect();
                    (Cow::Owned(out), access::INDEX_SEEDED, list.len())
                }
                None => full_scan(ctx, filter),
            }
        }
        _ => full_scan(ctx, filter),
    }
}

fn full_scan<'a>(
    ctx: &EvalContext<'a>,
    filter: &Filter,
) -> (Cow<'a, [EntryId]>, &'static str, usize) {
    let dir = ctx.instance();
    let all = dir.index().all_entries();
    let out: Vec<EntryId> = all
        .iter()
        .copied()
        .filter(|&id| {
            let entry = dir.entry(id).expect("indexed entries are live");
            filter.matches(entry, dir.registry())
        })
        .collect();
    (Cow::Owned(out), access::SCAN, all.len())
}

#[cfg(test)]
mod tests {
    use super::super::tests::figure1;
    use super::super::{evaluate, EvalContext};
    use super::*;

    fn q1() -> Query {
        Query::object_class("orgGroup")
            .minus(Query::object_class("orgGroup").with_descendant(Query::object_class("person")))
    }

    /// The explain evaluator is a faithful mirror: same results as
    /// `evaluate` on the whole differential battery.
    #[test]
    fn explain_result_matches_evaluate() {
        let (d, [_, _, _, db, ..]) = figure1();
        let whole = EvalContext::new(&d);
        let delta = EvalContext::with_delta(&d, db);
        let queries = [
            Query::object_class("person"),
            Query::object_class("nonexistent"),
            q1(),
            Query::object_class("person").with_parent(Query::object_class("orgUnit")),
            Query::object_class("orgUnit").with_child(Query::object_class("person")),
            Query::object_class("person").with_ancestor(Query::object_class("organization")),
            Query::select(Filter::present("mail")),
            Query::select(Filter::object_class("person").and(Filter::present("mail"))),
            Query::object_class("person").intersect(Query::object_class("online")),
            Query::object_class("orgUnit").union(Query::object_class("organization")),
            Query::select_bound(Filter::True, Binding::Empty),
        ];
        for q in &queries {
            assert_eq!(explain(&whole, q).result, evaluate(&whole, q), "query {q}");
        }
        let q = Query::select_bound(Filter::object_class("person"), Binding::Delta);
        assert_eq!(explain(&delta, &q).result, evaluate(&delta, &q));
    }

    #[test]
    fn plan_records_access_paths_and_counts() {
        let (d, _) = figure1();
        let ctx = EvalContext::new(&d);
        let report = explain(&ctx, &q1());
        // Q1 is empty on the legal Figure 1 instance.
        assert_eq!(report.matched(), 0);
        let plan = &report.plan;
        assert_eq!(plan.op, "σ?");
        assert_eq!(plan.access, access::LIST_MERGE);
        assert_eq!(plan.candidates, [3, 3]);
        assert_eq!((plan.scanned, plan.matched), (6, 0));
        // Left leaf: (objectClass=orgGroup) straight off the class index.
        let left = &plan.children[0];
        assert_eq!(left.access, access::INDEX_REUSED);
        assert_eq!((left.scanned, left.matched), (3, 3));
        // Right: σd over two index-reused leaves.
        let right = &plan.children[1];
        assert_eq!(right.access, access::INTERVAL_MERGE);
        assert_eq!((right.scanned, right.matched), (6, 3));
        assert_eq!(report.scanned(), 3 + 3 + 3 + 6 + 6);
    }

    #[test]
    fn seeded_and_scan_paths_are_distinguished() {
        let (d, _) = figure1();
        let ctx = EvalContext::new(&d);
        // person(3) ∧ mail-present(1): seeded from the smaller slice.
        let seeded = explain(
            &ctx,
            &Query::select(Filter::object_class("person").and(Filter::present("mail"))),
        );
        assert_eq!(seeded.plan.access, access::INDEX_SEEDED);
        assert_eq!((seeded.plan.scanned, seeded.plan.matched), (1, 1));
        // A bare equality on a non-objectClass attribute has no index.
        let scanned = explain(&ctx, &Query::select(Filter::Equality("uid".into(), "laks".into())));
        assert_eq!(scanned.plan.access, access::SCAN);
        assert_eq!((scanned.plan.scanned, scanned.plan.matched), (6, 1));
    }

    #[test]
    fn text_rendering_is_pinned() {
        let (d, _) = figure1();
        let ctx = EvalContext::new(&d);
        let text = explain(&ctx, &q1()).render_text();
        let expected = "\
Q: (σ? (objectClass=orgGroup) (σd (objectClass=orgGroup) (objectClass=person)))
σ? [list-merge] candidates=3+3 scanned=6 matched=0
  (objectClass=orgGroup) [index-reused] scanned=3 matched=3
  σd [interval-merge] candidates=3+3 scanned=6 matched=3
    (objectClass=orgGroup) [index-reused] scanned=3 matched=3
    (objectClass=person) [index-reused] scanned=3 matched=3
total scanned=21 matched=0
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_is_valid_and_carries_the_plan() {
        let (d, _) = figure1();
        let ctx = EvalContext::new(&d);
        let text = explain(&ctx, &q1()).to_json();
        assert!(json::is_valid(&text), "invalid JSON: {text}");
        assert!(text.starts_with("{\"query\":"), "{text}");
        assert!(text.contains("\"scanned\":21,\"matched\":0"), "{text}");
        assert!(text.contains("\"access\":\"interval-merge\""), "{text}");
        assert!(!text.contains('\n'));
    }
}
