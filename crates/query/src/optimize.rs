//! Algebraic simplification of filters and queries.
//!
//! The paper's conclusion notes that "query optimization is facilitated
//! using schema"; this module provides the schema-independent part — a
//! bottom-up rewrite that normalises boolean filters and collapses query
//! sub-trees that are statically empty (including Figure 5 `[∅]`-bound
//! selections, which makes the incremental checker's "nothing to check"
//! rows literally free). All rewrites preserve semantics; a differential
//! property test enforces this.

use crate::algebra::{Binding, Query};
use crate::filter::Filter;

/// Simplifies a filter: flattens nested `&`/`|`, applies identity and
/// annihilator laws, removes double negation. The result matches exactly
/// the same entries.
pub fn simplify_filter(filter: Filter) -> Filter {
    match filter {
        Filter::And(subs) => {
            let mut out = Vec::with_capacity(subs.len());
            for sub in subs {
                match simplify_filter(sub) {
                    Filter::True => {}
                    Filter::False => return Filter::False,
                    Filter::And(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Filter::True,
                1 => out.pop().expect("len checked"),
                _ => Filter::And(out),
            }
        }
        Filter::Or(subs) => {
            let mut out = Vec::with_capacity(subs.len());
            for sub in subs {
                match simplify_filter(sub) {
                    Filter::False => {}
                    Filter::True => return Filter::True,
                    Filter::Or(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Filter::False,
                1 => out.pop().expect("len checked"),
                _ => Filter::Or(out),
            }
        }
        Filter::Not(sub) => match simplify_filter(*sub) {
            Filter::True => Filter::False,
            Filter::False => Filter::True,
            Filter::Not(inner) => *inner,
            other => Filter::Not(Box::new(other)),
        },
        leaf => leaf,
    }
}

/// True when the (simplified) query can be decided empty without touching
/// any instance.
fn is_statically_empty(query: &Query) -> bool {
    match query {
        Query::Select { filter, binding } => {
            *binding == Binding::Empty || matches!(filter, Filter::False)
        }
        _ => false,
    }
}

/// The canonical statically-empty query.
fn empty() -> Query {
    Query::Select { filter: Filter::False, binding: Binding::Empty }
}

/// Simplifies a query bottom-up. The result evaluates to the same entry set
/// on every instance.
pub fn simplify(query: Query) -> Query {
    match query {
        Query::Select { filter, binding } => {
            let filter = simplify_filter(filter);
            if binding == Binding::Empty || matches!(filter, Filter::False) {
                empty()
            } else {
                Query::Select { filter, binding }
            }
        }
        Query::Child(a, b) => hierarchical(Query::Child, *a, *b),
        Query::Parent(a, b) => hierarchical(Query::Parent, *a, *b),
        Query::Descendant(a, b) => hierarchical(Query::Descendant, *a, *b),
        Query::Ancestor(a, b) => hierarchical(Query::Ancestor, *a, *b),
        Query::Minus(a, b) => {
            let a = simplify(*a);
            let b = simplify(*b);
            if is_statically_empty(&a) {
                empty()
            } else if is_statically_empty(&b) {
                a
            } else {
                Query::Minus(Box::new(a), Box::new(b))
            }
        }
        Query::Union(a, b) => {
            let a = simplify(*a);
            let b = simplify(*b);
            if is_statically_empty(&a) {
                b
            } else if is_statically_empty(&b) {
                a
            } else {
                Query::Union(Box::new(a), Box::new(b))
            }
        }
        Query::Intersect(a, b) => {
            let a = simplify(*a);
            let b = simplify(*b);
            if is_statically_empty(&a) || is_statically_empty(&b) {
                return empty();
            }
            // Two same-binding atomic selections intersect into one scan.
            if let (
                Query::Select { filter: fa, binding: ba },
                Query::Select { filter: fb, binding: bb },
            ) = (&a, &b)
            {
                if ba == bb {
                    return simplify(Query::Select {
                        filter: fa.clone().and(fb.clone()),
                        binding: *ba,
                    });
                }
            }
            Query::Intersect(Box::new(a), Box::new(b))
        }
    }
}

/// Shared handling for the four hierarchical operators: both arguments
/// simplify, and an empty argument on either side empties the whole
/// selection (their results are subsets of the first argument, filtered by
/// existence in the second).
fn hierarchical(build: fn(Box<Query>, Box<Query>) -> Query, a: Query, b: Query) -> Query {
    let a = simplify(a);
    let b = simplify(b);
    if is_statically_empty(&a) || is_statically_empty(&b) {
        empty()
    } else {
        build(Box::new(a), Box::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_laws() {
        // Identity / annihilator.
        let f = Filter::present("a").and(Filter::True);
        assert_eq!(simplify_filter(f), Filter::Present("a".into()));
        let f = Filter::present("a").and(Filter::False);
        assert_eq!(simplify_filter(f), Filter::False);
        let f = Filter::present("a").or(Filter::True);
        assert_eq!(simplify_filter(f), Filter::True);
        let f = Filter::present("a").or(Filter::False);
        assert_eq!(simplify_filter(f), Filter::Present("a".into()));
        // Double negation.
        let f = Filter::present("a").not().not();
        assert_eq!(simplify_filter(f), Filter::Present("a".into()));
        // Constant negation.
        assert_eq!(simplify_filter(Filter::True.not()), Filter::False);
        // Empty connectives.
        assert_eq!(simplify_filter(Filter::And(vec![])), Filter::True);
        assert_eq!(simplify_filter(Filter::Or(vec![])), Filter::False);
    }

    #[test]
    fn nested_flattening() {
        let f = Filter::And(vec![
            Filter::And(vec![Filter::present("a"), Filter::present("b")]),
            Filter::present("c"),
            Filter::True,
        ]);
        match simplify_filter(f) {
            Filter::And(subs) => assert_eq!(subs.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn empty_propagation_through_operators() {
        let e = Query::select_bound(Filter::object_class("x"), Binding::Empty);
        let q = Query::object_class("a").with_descendant(e.clone());
        assert!(is_statically_empty(&simplify(q)));
        let q = e.clone().with_child(Query::object_class("a"));
        assert!(is_statically_empty(&simplify(q)));
        let q = Query::object_class("a").minus(e.clone());
        assert_eq!(simplify(q), Query::object_class("a"));
        let q = e.clone().union(Query::object_class("a"));
        assert_eq!(simplify(q), Query::object_class("a"));
        let q = e.intersect(Query::object_class("a"));
        assert!(is_statically_empty(&simplify(q)));
    }

    #[test]
    fn false_filter_empties_select() {
        let q = Query::select(Filter::present("a").and(Filter::False));
        assert!(is_statically_empty(&simplify(q)));
    }

    #[test]
    fn intersect_of_selects_merges() {
        let q = Query::select(Filter::object_class("person"))
            .intersect(Query::select(Filter::present("mail")));
        let s = simplify(q);
        match s {
            Query::Select { filter: Filter::And(subs), .. } => assert_eq!(subs.len(), 2),
            other => panic!("expected merged And select, got {other}"),
        }
    }

    #[test]
    fn figure5_safe_rows_become_free() {
        // An all-[∅] Δ-query simplifies to the canonical empty query.
        let q = Query::object_class("a")
            .minus(Query::object_class("a").with_parent(Query::object_class("b")))
            .map_bindings(&|_| Binding::Empty);
        assert!(is_statically_empty(&simplify(q)));
    }
}
