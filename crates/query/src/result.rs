//! Result sets: preorder-sorted entry lists and their merge-based set
//! operations.
//!
//! Every evaluator in this crate produces entry lists sorted by preorder
//! rank. Keeping that invariant lets union / intersection / difference run
//! as linear merges and lets the hierarchical operators run as interval
//! merge joins — the "entries are sorted" precondition of §3.2's
//! O(|Q|·|D|) bound.

use bschema_directory::{EntryId, Forest};

/// Merges two preorder-sorted lists, keeping entries present in either.
pub fn union(forest: &Forest, a: &[EntryId], b: &[EntryId]) -> Vec<EntryId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (pa, pb) = (forest.pre(a[i]), forest.pre(b[j]));
        match pa.cmp(&pb) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merges two preorder-sorted lists, keeping entries present in both.
pub fn intersect(forest: &Forest, a: &[EntryId], b: &[EntryId]) -> Vec<EntryId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (pa, pb) = (forest.pre(a[i]), forest.pre(b[j]));
        match pa.cmp(&pb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Merges two preorder-sorted lists, keeping entries of `a` not in `b` —
/// the `σ?` operator's set semantics.
pub fn minus(forest: &Forest, a: &[EntryId], b: &[EntryId]) -> Vec<EntryId> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (pa, pb) = (forest.pre(a[i]), forest.pre(b[j]));
        match pa.cmp(&pb) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// Restricts a preorder-sorted list to the subtree rooted at `root`
/// (inclusive). Because a subtree is a contiguous preorder range
/// `[pre(root), end(root)]`, this is two binary searches.
pub fn restrict_to_subtree(forest: &Forest, list: &[EntryId], root: EntryId) -> Vec<EntryId> {
    let lo = forest.pre(root);
    let hi = forest.end(root);
    let start = list.partition_point(|&e| forest.pre(e) < lo);
    let stop = list.partition_point(|&e| forest.pre(e) <= hi);
    list[start..stop].to_vec()
}

/// Debug-checks that `list` is strictly preorder-sorted.
pub fn is_preorder_sorted(forest: &Forest, list: &[EntryId]) -> bool {
    list.windows(2).all(|w| forest.pre(w[0]) < forest.pre(w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Forest, Vec<EntryId>) {
        let mut f = Forest::new();
        let mut ids = Vec::new();
        let mut cur = f.add_root();
        ids.push(cur);
        for _ in 1..n {
            cur = f.add_child(cur).unwrap();
            ids.push(cur);
        }
        f.ensure_numbered();
        (f, ids)
    }

    #[test]
    fn set_ops_on_chain() {
        let (f, ids) = chain(6);
        let evens: Vec<EntryId> = ids.iter().step_by(2).copied().collect();
        let first_four = &ids[..4];
        assert_eq!(union(&f, &evens, first_four), &ids[..5]);
        assert_eq!(intersect(&f, &evens, first_four), [ids[0], ids[2]]);
        assert_eq!(minus(&f, first_four, &evens), [ids[1], ids[3]]);
        assert_eq!(minus(&f, &evens, &[]), evens);
        assert_eq!(intersect(&f, &evens, &[]), []);
        assert_eq!(union(&f, &[], &evens), evens);
    }

    #[test]
    fn subtree_restriction_is_a_range() {
        let mut f = Forest::new();
        let r1 = f.add_root();
        let a = f.add_child(r1).unwrap();
        let b = f.add_child(a).unwrap();
        let c = f.add_child(r1).unwrap();
        let r2 = f.add_root();
        f.ensure_numbered();
        let all: Vec<EntryId> = f.iter().collect();
        assert_eq!(restrict_to_subtree(&f, &all, a), [a, b]);
        assert_eq!(restrict_to_subtree(&f, &all, r1), [r1, a, b, c]);
        assert_eq!(restrict_to_subtree(&f, &all, r2), [r2]);
        assert!(is_preorder_sorted(&f, &all));
    }
}
