//! # bschema-query
//!
//! The hierarchical query-engine substrate for the bounding-schemas
//! reproduction: a from-scratch implementation of the directory query
//! algebra of Jagadish, Lakshmanan, Milo, Srivastava & Vista ("Querying
//! network directories", SIGMOD '99 — reference \[9\] of the paper), which §3.2
//! reduces structure-schema legality to.
//!
//! * [`filter`] — LDAP boolean filters (RFC 2254), syntax-aware matching.
//! * [`filter_parser`] — the RFC 2254 string syntax.
//! * [`algebra`] — hierarchical selection queries: `σc`, `σp`, `σd`, `σa`,
//!   `σ?`, plus union/intersection, with the Figure 5 per-leaf dataset
//!   [`Binding`]s used by incremental legality checking.
//! * [`eval`] — the interval-merge evaluator ([`evaluate`], O(|Q|·|D|)),
//!   the naive nested-loop oracle ([`evaluate_naive`], O(|Q|·|D|²)), and
//!   the plan-recording [`explain`] evaluator (EXPLAIN for Figure 4
//!   queries: access paths, candidate sizes, scanned vs. matched).
//! * [`result`] — preorder-sorted result lists and their merge ops.
//!
//! ## Example: the paper's Q1
//!
//! ```
//! use bschema_directory::{DirectoryInstance, Entry};
//! use bschema_query::{EvalContext, Query, evaluate};
//!
//! let mut dir = DirectoryInstance::white_pages();
//! let org = dir.add_root_entry(
//!     Entry::builder().classes(["organization", "orgGroup", "top"]).build(),
//! );
//! dir.add_child_entry(org, Entry::builder().classes(["person", "top"]).build()).unwrap();
//! dir.prepare();
//!
//! // Q1: orgGroups with NO person descendant — empty iff the
//! // orgGroup ⇒⇒ person requirement holds.
//! let q1 = Query::object_class("orgGroup").minus(
//!     Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
//! );
//! assert!(evaluate(&EvalContext::new(&dir), &q1).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod eval;
pub mod filter;
pub mod filter_parser;
pub mod optimize;
pub mod result;
pub mod search;

pub use algebra::{Binding, Query};
pub use eval::{
    evaluate, evaluate_batch, evaluate_naive, explain, EvalContext, Explain, ExplainNode,
};
pub use filter::Filter;
pub use filter_parser::{
    parse_filter, parse_filter_limited, FilterParseError, DEFAULT_FILTER_DEPTH,
};
pub use optimize::{simplify, simplify_filter};
pub use search::{search, search_dn, SearchRequest, SearchScope};
