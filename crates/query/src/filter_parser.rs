//! RFC 2254 filter string parser: `(&(objectClass=person)(mail=*))` → [`Filter`].

use std::fmt;

use crate::filter::Filter;

/// Errors from [`parse_filter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterParseError {
    /// Input ended unexpectedly.
    UnexpectedEnd,
    /// Expected `(` at the given byte offset.
    ExpectedOpen(usize),
    /// Expected `)` at the given byte offset.
    ExpectedClose(usize),
    /// An attribute name was empty.
    EmptyAttribute(usize),
    /// A hex escape was malformed.
    BadEscape(usize),
    /// Trailing characters after the filter.
    TrailingInput(usize),
    /// An empty `(!)`, or `!` with several sub-filters.
    BadNot(usize),
    /// Nesting exceeded the depth limit (guard against stack overflow on
    /// pathological inputs like `(!(!(!(...))))`).
    TooDeep {
        /// Byte offset where the limit was crossed.
        at: usize,
        /// The depth limit in force.
        limit: usize,
    },
}

impl fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterParseError::UnexpectedEnd => write!(f, "unexpected end of filter"),
            FilterParseError::ExpectedOpen(p) => write!(f, "expected '(' at byte {p}"),
            FilterParseError::ExpectedClose(p) => write!(f, "expected ')' at byte {p}"),
            FilterParseError::EmptyAttribute(p) => write!(f, "empty attribute name at byte {p}"),
            FilterParseError::BadEscape(p) => write!(f, "bad \\xx escape at byte {p}"),
            FilterParseError::TrailingInput(p) => write!(f, "trailing input at byte {p}"),
            FilterParseError::BadNot(p) => write!(f, "'!' takes exactly one sub-filter (byte {p})"),
            FilterParseError::TooDeep { at, limit } => {
                write!(f, "filter nesting at byte {at} exceeds depth limit {limit}")
            }
        }
    }
}

impl std::error::Error for FilterParseError {}

/// Default nesting depth limit for [`parse_filter`]. Far above any real
/// query, far below where recursion threatens the stack.
pub const DEFAULT_FILTER_DEPTH: usize = 128;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Result<(), FilterParseError> {
        match self.peek() {
            Some(x) if x == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(if b == b'(' {
                FilterParseError::ExpectedOpen(self.pos)
            } else {
                FilterParseError::ExpectedClose(self.pos)
            }),
            None => Err(FilterParseError::UnexpectedEnd),
        }
    }

    fn parse(&mut self) -> Result<Filter, FilterParseError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(FilterParseError::TooDeep { at: self.pos, limit: self.max_depth });
        }
        let filter = self.parse_inner();
        self.depth -= 1;
        filter
    }

    fn parse_inner(&mut self) -> Result<Filter, FilterParseError> {
        self.expect(b'(')?;
        let filter = match self.peek() {
            Some(b'&') => {
                self.bump();
                Filter::And(self.parse_list()?)
            }
            Some(b'|') => {
                self.bump();
                Filter::Or(self.parse_list()?)
            }
            Some(b'!') => {
                let at = self.pos;
                self.bump();
                let subs = self.parse_list()?;
                if subs.len() != 1 {
                    return Err(FilterParseError::BadNot(at));
                }
                Filter::Not(Box::new(subs.into_iter().next().expect("len checked")))
            }
            Some(_) => self.parse_item()?,
            None => return Err(FilterParseError::UnexpectedEnd),
        };
        self.expect(b')')?;
        Ok(filter)
    }

    fn parse_list(&mut self) -> Result<Vec<Filter>, FilterParseError> {
        let mut out = Vec::new();
        while self.peek() == Some(b'(') {
            out.push(self.parse()?);
        }
        Ok(out)
    }

    /// Parses `attr OP value` where OP ∈ {`=`, `>=`, `<=`} and value may be
    /// `*`, a plain value, or a substring pattern with `*`s.
    fn parse_item(&mut self) -> Result<Filter, FilterParseError> {
        let attr_start = self.pos;
        while self.peek().is_some_and(|b| !matches!(b, b'=' | b'<' | b'>' | b'(' | b')')) {
            self.pos += 1;
        }
        let attr = std::str::from_utf8(&self.input[attr_start..self.pos])
            .map_err(|_| FilterParseError::BadEscape(attr_start))?
            .trim()
            .to_owned();
        if attr.is_empty() {
            return Err(FilterParseError::EmptyAttribute(attr_start));
        }
        let op = self.bump().ok_or(FilterParseError::UnexpectedEnd)?;
        let (ge, le) = match op {
            b'>' => {
                self.expect(b'=').map_err(|_| FilterParseError::BadEscape(self.pos))?;
                (true, false)
            }
            b'<' => {
                self.expect(b'=').map_err(|_| FilterParseError::BadEscape(self.pos))?;
                (false, true)
            }
            b'=' => (false, false),
            _ => return Err(FilterParseError::ExpectedClose(self.pos - 1)),
        };

        // Collect value fragments split on unescaped '*'.
        let mut fragments: Vec<String> = vec![String::new()];
        let mut stars = 0usize;
        while let Some(b) = self.peek() {
            match b {
                b')' => break,
                b'*' => {
                    stars += 1;
                    fragments.push(String::new());
                    self.pos += 1;
                }
                b'\\' => {
                    let at = self.pos;
                    self.pos += 1;
                    let hex = self
                        .input
                        .get(self.pos..self.pos + 2)
                        .ok_or(FilterParseError::BadEscape(at))?;
                    let s =
                        std::str::from_utf8(hex).map_err(|_| FilterParseError::BadEscape(at))?;
                    let byte =
                        u8::from_str_radix(s, 16).map_err(|_| FilterParseError::BadEscape(at))?;
                    fragments.last_mut().expect("fragments never empty").push(byte as char);
                    self.pos += 2;
                }
                _ => {
                    let ch_start = self.pos;
                    // Advance over one UTF-8 character.
                    let s = std::str::from_utf8(&self.input[ch_start..])
                        .map_err(|_| FilterParseError::BadEscape(ch_start))?;
                    let ch = s.chars().next().ok_or(FilterParseError::UnexpectedEnd)?;
                    fragments.last_mut().expect("fragments never empty").push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }

        if ge || le {
            // Ordering filters take a plain value; '*' is literal there per
            // RFC 2254 grammar, but we reject it for clarity.
            let value = fragments.join("*");
            return Ok(if ge {
                Filter::GreaterOrEqual(attr, value)
            } else {
                Filter::LessOrEqual(attr, value)
            });
        }

        match stars {
            0 => Ok(Filter::Equality(attr, fragments.pop().expect("one fragment"))),
            _ => {
                let all_empty = fragments.iter().all(String::is_empty);
                if stars == 1 && all_empty {
                    return Ok(Filter::Present(attr));
                }
                let finally = {
                    let last = fragments.pop().expect("fragments never empty");
                    if last.is_empty() {
                        None
                    } else {
                        Some(last)
                    }
                };
                let initial = {
                    let first = fragments.remove(0);
                    if first.is_empty() {
                        None
                    } else {
                        Some(first)
                    }
                };
                let any = fragments.into_iter().filter(|f| !f.is_empty()).collect();
                Ok(Filter::Substring { attr, initial, any, finally })
            }
        }
    }
}

/// Parses an RFC 2254 filter string, capping nesting at
/// [`DEFAULT_FILTER_DEPTH`].
pub fn parse_filter(input: &str) -> Result<Filter, FilterParseError> {
    parse_filter_limited(input, DEFAULT_FILTER_DEPTH)
}

/// Like [`parse_filter`] with an explicit nesting depth limit.
pub fn parse_filter_limited(input: &str, max_depth: usize) -> Result<Filter, FilterParseError> {
    let mut p = Parser { input: input.trim().as_bytes(), pos: 0, depth: 0, max_depth };
    let filter = p.parse()?;
    if p.pos != p.input.len() {
        return Err(FilterParseError::TrailingInput(p.pos));
    }
    Ok(filter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_equality() {
        assert_eq!(parse_filter("(objectClass=person)").unwrap(), Filter::object_class("person"));
    }

    #[test]
    fn parse_presence() {
        assert_eq!(parse_filter("(mail=*)").unwrap(), Filter::Present("mail".into()));
    }

    #[test]
    fn parse_substring() {
        let f = parse_filter("(mail=laks*att*com)").unwrap();
        assert_eq!(
            f,
            Filter::Substring {
                attr: "mail".into(),
                initial: Some("laks".into()),
                any: vec!["att".into()],
                finally: Some("com".into()),
            }
        );
        let g = parse_filter("(cn=*smith)").unwrap();
        assert_eq!(
            g,
            Filter::Substring {
                attr: "cn".into(),
                initial: None,
                any: vec![],
                finally: Some("smith".into()),
            }
        );
    }

    #[test]
    fn parse_ordering() {
        assert_eq!(
            parse_filter("(employeeNumber>=10)").unwrap(),
            Filter::GreaterOrEqual("employeeNumber".into(), "10".into())
        );
        assert_eq!(
            parse_filter("(employeeNumber<=99)").unwrap(),
            Filter::LessOrEqual("employeeNumber".into(), "99".into())
        );
    }

    #[test]
    fn parse_boolean() {
        let f = parse_filter("(&(objectClass=person)(|(uid=laks)(uid=suciu))(!(mail=*)))").unwrap();
        match f {
            Filter::And(subs) => {
                assert_eq!(subs.len(), 3);
                assert!(matches!(&subs[1], Filter::Or(v) if v.len() == 2));
                assert!(matches!(&subs[2], Filter::Not(_)));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn parse_escapes() {
        let f = parse_filter(r"(cn=a\2ab)").unwrap();
        assert_eq!(f, Filter::Equality("cn".into(), "a*b".into()));
        let g = parse_filter(r"(cn=\28paren\29)").unwrap();
        assert_eq!(g, Filter::Equality("cn".into(), "(paren)".into()));
    }

    #[test]
    fn roundtrip_display_parse() {
        let cases = [
            "(objectClass=person)",
            "(mail=*)",
            "(&(objectClass=person)(mail=*))",
            "(!(objectClass=orgUnit))",
            "(|(uid=a)(uid=b))",
            "(employeeNumber>=10)",
        ];
        for case in cases {
            let f = parse_filter(case).unwrap();
            assert_eq!(parse_filter(&f.to_string()).unwrap(), f, "roundtrip {case}");
        }
    }

    #[test]
    fn errors() {
        assert!(matches!(parse_filter(""), Err(FilterParseError::UnexpectedEnd)));
        assert!(matches!(parse_filter("objectClass=x"), Err(FilterParseError::ExpectedOpen(0))));
        assert!(matches!(parse_filter("(=x)"), Err(FilterParseError::EmptyAttribute(_))));
        assert!(matches!(parse_filter("(a=b))"), Err(FilterParseError::TrailingInput(_))));
        assert!(matches!(parse_filter("(a=b"), Err(FilterParseError::UnexpectedEnd)));
        assert!(matches!(parse_filter("(!(a=b)(c=d))"), Err(FilterParseError::BadNot(_))));
        assert!(matches!(parse_filter(r"(a=\zz)"), Err(FilterParseError::BadEscape(_))));
    }

    #[test]
    fn empty_not_rejected() {
        assert!(matches!(parse_filter("(!)"), Err(FilterParseError::BadNot(_))));
    }

    #[test]
    fn pathological_nesting_is_rejected_not_overflowed() {
        // 100k nested negations: must fail fast with TooDeep instead of
        // blowing the stack.
        let n = 100_000;
        let mut text = String::with_capacity(n * 4 + 8);
        for _ in 0..n {
            text.push_str("(!");
        }
        text.push_str("(a=b)");
        for _ in 0..n {
            text.push(')');
        }
        let err = parse_filter(&text).unwrap_err();
        assert!(matches!(err, FilterParseError::TooDeep { limit: DEFAULT_FILTER_DEPTH, .. }));
    }

    #[test]
    fn depth_limit_is_exact() {
        // depth d needs d nested parses; (a=b) alone is depth 1.
        assert!(parse_filter_limited("(a=b)", 1).is_ok());
        assert!(matches!(
            parse_filter_limited("(!(a=b))", 1),
            Err(FilterParseError::TooDeep { limit: 1, .. })
        ));
        assert!(parse_filter_limited("(!(a=b))", 2).is_ok());
        // A deep but within-limit filter still parses under the default.
        let mut text = String::new();
        for _ in 0..100 {
            text.push_str("(!");
        }
        text.push_str("(a=b)");
        for _ in 0..100 {
            text.push(')');
        }
        assert!(parse_filter(&text).is_ok());
    }
}
