//! Constraint inference: discovering a bounding-schema from data.
//!
//! §6.2 contrasts the directory world's *prescriptive* schemas with the
//! semi-structured world's *descriptive* ones, where "the challenge is to
//! discover the schema from observed instances" (citing Nestorov–Abiteboul–
//! Motwani's lower/upper-bound schemas). This module bridges the two: it
//! observes a [`DataGraph`] and emits the tightest [`ConstraintSet`] of
//! bounding-schema elements the instance satisfies — required relationships
//! every node obeys (lower bounds) and forbidden relationships no node
//! violates (upper bounds). Feeding the result to [`crate::check()`](fn@crate::check::check) against
//! the source instance always succeeds; against *future* instances it acts
//! as the prescriptive schema the data suggested.

use bschema_query::{evaluate, EvalContext, Query};

use crate::constraint::{ConstraintSet, PathConstraint};
use crate::model::DataGraph;

/// What to infer.
#[derive(Debug, Clone)]
pub struct InferenceOptions {
    /// Emit `a →ch b` / `a →de b` when every `a` node has the relative.
    pub required: bool,
    /// Emit `a ↛ch b` / `a ↛de b` when no `a` node has the relative.
    /// Over-fits small instances (everything unobserved becomes forbidden),
    /// so it can be switched off.
    pub forbidden: bool,
    /// Emit `◇label` for every observed label.
    pub required_labels: bool,
}

impl Default for InferenceOptions {
    fn default() -> Self {
        InferenceOptions { required: true, forbidden: true, required_labels: false }
    }
}

/// Infers the tightest constraint set the instance satisfies, minimised:
/// `a →ch b` subsumes `a →de b`; `a ↛de b` subsumes `a ↛ch b`.
pub fn infer(graph: &mut DataGraph, options: &InferenceOptions) -> ConstraintSet {
    let labels = graph.labels();
    let dir = graph.as_directory();
    let ctx = EvalContext::new(dir);
    let mut out = ConstraintSet::new();

    if options.required_labels {
        for label in &labels {
            out.push(PathConstraint::RequireLabel(label.clone()));
        }
    }

    for a in &labels {
        for b in &labels {
            // Skip self-pairs for required forms (a →de a holds only in
            // infinite chains; a →ch a likewise) but keep them for
            // forbidden forms (country ↛de country is the paper's example).
            let all_have = |q: Query| evaluate(&ctx, &q).is_empty();
            let none_have = |q: Query| evaluate(&ctx, &q).is_empty();

            if options.required && a != b {
                let every_child = all_have(Query::object_class(a.clone()).minus(
                    Query::object_class(a.clone()).with_child(Query::object_class(b.clone())),
                ));
                if every_child {
                    out.push(PathConstraint::child(a.clone(), b.clone()));
                } else {
                    let every_desc = all_have(
                        Query::object_class(a.clone()).minus(
                            Query::object_class(a.clone())
                                .with_descendant(Query::object_class(b.clone())),
                        ),
                    );
                    if every_desc {
                        out.push(PathConstraint::descendant(a.clone(), b.clone()));
                    }
                }
            }

            if options.forbidden {
                let no_desc = none_have(
                    Query::object_class(a.clone()).with_descendant(Query::object_class(b.clone())),
                );
                if no_desc {
                    out.push(PathConstraint::no_descendant(a.clone(), b.clone()));
                } else {
                    let no_child = none_have(
                        Query::object_class(a.clone()).with_child(Query::object_class(b.clone())),
                    );
                    if no_child {
                        out.push(PathConstraint::no_child(a.clone(), b.clone()));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::satisfies;

    /// The §6.3 world: countries holding national corporations with
    /// subsidiaries; a top-level multinational holding countries.
    fn world() -> DataGraph {
        let mut g = DataGraph::new();
        let db = g.add_root("db");
        let us = g.add_child(db, "country");
        let natl = g.add_child(us, "corporation");
        let _sub = g.add_child(natl, "corporation");
        let multi = g.add_child(db, "corporation");
        let de = g.add_child(multi, "country");
        g.add_child(de, "corporation"); // German subsidiary
        g
    }

    #[test]
    fn inferred_constraints_hold_on_the_source() {
        let mut g = world();
        let inferred = infer(&mut g, &InferenceOptions::default());
        assert!(!inferred.is_empty());
        assert!(
            satisfies(&mut g, &inferred),
            "inference must be sound by construction: {inferred:?}"
        );
    }

    #[test]
    fn paper_example_constraints_are_discovered() {
        let mut g = world();
        let inferred = infer(&mut g, &InferenceOptions::default());
        // The §6.3 prohibition is observed: no country nests inside another.
        assert!(
            inferred.constraints().contains(&PathConstraint::no_descendant("country", "country")),
            "{inferred:?}"
        );
        // Countries are never below corporations... false here (multi holds
        // a country), so that must NOT be inferred.
        assert!(!inferred
            .constraints()
            .contains(&PathConstraint::no_descendant("corporation", "country")));
        // Every country in this instance holds a corporation.
        assert!(inferred.constraints().contains(&PathConstraint::child("country", "corporation")));
    }

    #[test]
    fn child_subsumes_descendant_and_de_subsumes_ch() {
        let mut g = DataGraph::new();
        let r = g.add_root("person");
        g.add_value_child(r, "name", "x");
        let inferred = infer(&mut g, &InferenceOptions::default());
        let c = inferred.constraints();
        // person →ch name inferred; person →de name suppressed as implied.
        assert!(c.contains(&PathConstraint::child("person", "name")));
        assert!(!c.contains(&PathConstraint::descendant("person", "name")));
        // name ↛de person inferred; name ↛ch person suppressed.
        assert!(c.contains(&PathConstraint::no_descendant("name", "person")));
        assert!(!c.contains(&PathConstraint::no_child("name", "person")));
    }

    #[test]
    fn forbidden_inference_can_be_disabled() {
        let mut g = world();
        let opts = InferenceOptions { forbidden: false, ..Default::default() };
        let inferred = infer(&mut g, &opts);
        assert!(inferred.constraints().iter().all(|c| !matches!(c, PathConstraint::Forbid { .. })));
    }

    #[test]
    fn required_labels_option() {
        let mut g = world();
        let opts = InferenceOptions { required_labels: true, required: false, forbidden: false };
        let inferred = infer(&mut g, &opts);
        assert!(inferred.constraints().contains(&PathConstraint::RequireLabel("country".into())));
        assert!(satisfies(&mut g, &inferred));
    }

    #[test]
    fn inferred_schema_rejects_deviant_future_instances() {
        let mut g = world();
        let inferred = infer(&mut g, &InferenceOptions::default());
        // A future instance nesting countries violates the inferred bounds.
        let mut future = world();
        let root = future.add_root("country");
        let inner = future.add_child(root, "corporation");
        future.add_child(inner, "country");
        assert!(!satisfies(&mut future, &inferred));
    }
}
