//! # bschema-semistructured
//!
//! §6 of the paper: bounding-schema structural constraints applied beyond
//! LDAP, to semi-structured (edge-labelled tree) data.
//!
//! The fixed-length path constraints of Buneman–Fan–Weinstein and the
//! regular-path constraints of Abiteboul–Vianu cannot express required or
//! forbidden ancestor–descendant relationships of *unbounded* path length;
//! bounding-schema relationships can ("each person node must have a
//! (descendant) name node", "forbid a country node to be a descendant of
//! another country node"). This crate provides:
//!
//! * [`model`] — a labelled-tree data model ([`DataGraph`]);
//! * [`constraint`] — label-based path constraints ([`PathConstraint`],
//!   [`ConstraintSet`]);
//! * [`check`](mod@check) — constraint checking and satisfiability by reduction to the
//!   LDAP machinery of `bschema-core` (labels become core classes).
//!
//! ```
//! use bschema_semistructured::{DataGraph, ConstraintSet, PathConstraint, satisfies};
//!
//! let constraints = ConstraintSet::new()
//!     .with(PathConstraint::descendant("person", "name"))
//!     .with(PathConstraint::no_descendant("country", "country"));
//!
//! let mut g = DataGraph::new();
//! let db = g.add_root("db");
//! let person = g.add_child(db, "person");
//! g.add_value_child(person, "name", "laks");
//! assert!(satisfies(&mut g, &constraints));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod constraint;
pub mod infer;
pub mod model;

pub use check::{check, compile, is_satisfiable, satisfies, ConstraintViolation};
pub use constraint::{ConstraintSet, PathConstraint};
pub use infer::{infer, InferenceOptions};
pub use model::{DataGraph, NodeId};
