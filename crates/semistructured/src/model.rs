//! A minimal semi-structured data model: an unordered labelled tree with
//! optional atomic values at the nodes (OEM-flavoured).
//!
//! The §6.3 observation is that bounding-schema structural relationships
//! transfer directly to this model: node labels play the role of object
//! classes. Internally each node is encoded as a directory entry whose
//! classes are `{label, top}`, so the hierarchical query engine and the
//! legality machinery apply unchanged.

use bschema_directory::{DirectoryInstance, Entry, EntryId};

/// Handle to a node in a [`DataGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) EntryId);

/// A labelled tree of semi-structured data.
#[derive(Debug, Clone, Default)]
pub struct DataGraph {
    dir: DirectoryInstance,
}

impl DataGraph {
    /// An empty graph.
    pub fn new() -> Self {
        DataGraph::default()
    }

    fn entry(label: &str, value: Option<&str>) -> Entry {
        let mut builder = Entry::builder().class(label).class("top");
        if let Some(v) = value {
            builder = builder.attr("value", v);
        }
        builder.build()
    }

    /// Adds a root node.
    pub fn add_root(&mut self, label: &str) -> NodeId {
        NodeId(self.dir.add_root_entry(Self::entry(label, None)))
    }

    /// Adds a child node.
    pub fn add_child(&mut self, parent: NodeId, label: &str) -> NodeId {
        NodeId(
            self.dir
                .add_child_entry(parent.0, Self::entry(label, None))
                .expect("parent node exists"),
        )
    }

    /// Adds a leaf child carrying an atomic value.
    pub fn add_value_child(&mut self, parent: NodeId, label: &str, value: &str) -> NodeId {
        NodeId(
            self.dir
                .add_child_entry(parent.0, Self::entry(label, Some(value)))
                .expect("parent node exists"),
        )
    }

    /// The node's label.
    pub fn label(&self, node: NodeId) -> &str {
        self.dir
            .entry(node.0)
            .expect("node exists")
            .classes()
            .iter()
            .find(|c| !c.eq_ignore_ascii_case("top"))
            .map(String::as_str)
            .unwrap_or("top")
    }

    /// The node's atomic value, if any.
    pub fn value(&self, node: NodeId) -> Option<&str> {
        self.dir.entry(node.0)?.first_value("value")
    }

    /// Parent of a node.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.dir.forest().parent(node.0).map(NodeId)
    }

    /// Children of a node.
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        self.dir.forest().children(node.0).map(NodeId).collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// The underlying directory encoding (prepared); constraint checking
    /// runs against this.
    pub fn as_directory(&mut self) -> &DirectoryInstance {
        self.dir.prepare();
        &self.dir
    }

    /// Labels present in the graph, lowercased, sorted.
    pub fn labels(&mut self) -> Vec<String> {
        self.dir.prepare();
        let mut labels: Vec<String> =
            self.dir.index().classes().filter(|c| *c != "top").map(str::to_owned).collect();
        labels.sort_unstable();
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_navigate() {
        let mut g = DataGraph::new();
        let db = g.add_root("db");
        let person = g.add_child(db, "person");
        let name = g.add_value_child(person, "name", "laks");
        assert_eq!(g.len(), 3);
        assert_eq!(g.label(person), "person");
        assert_eq!(g.label(name), "name");
        assert_eq!(g.value(name), Some("laks"));
        assert_eq!(g.value(person), None);
        assert_eq!(g.parent(name), Some(person));
        assert_eq!(g.children(db), [person]);
        assert_eq!(g.labels(), ["db", "name", "person"]);
    }
}
