//! Path constraints over labelled trees, per §6.3.
//!
//! These are exactly the bounding-schema structural relationships with node
//! labels in place of object classes. The paper positions them against the
//! fixed-length path constraints of Buneman et al. and the regular-path
//! constraints of Abiteboul & Vianu: required/forbidden ancestor-descendant
//! relationships of *unbounded* path length are expressible here and not
//! there.

use std::fmt;

use bschema_core::schema::{ForbidKind, RelKind};

/// One path constraint over node labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathConstraint {
    /// At least one node with this label must exist.
    RequireLabel(String),
    /// Every `source`-labelled node must have a `kind`-related
    /// `target`-labelled node (e.g. "each person node must have a
    /// (descendant) name node", §6.3).
    Require {
        /// Label of the obligated nodes.
        source: String,
        /// Relationship direction.
        kind: RelKind,
        /// Label of the required relative.
        target: String,
    },
    /// No `upper`-labelled node may have a `kind`-related `lower` node
    /// (e.g. "forbid a country node to be a descendant of another country
    /// node", §6.3).
    Forbid {
        /// Label of the upper node.
        upper: String,
        /// Child or descendant.
        kind: ForbidKind,
        /// Label of the forbidden relative.
        lower: String,
    },
}

impl PathConstraint {
    /// `source` must have a `target` descendant (any path length).
    pub fn descendant(source: impl Into<String>, target: impl Into<String>) -> Self {
        PathConstraint::Require {
            source: source.into(),
            kind: RelKind::Descendant,
            target: target.into(),
        }
    }

    /// `source` must have a `target` child.
    pub fn child(source: impl Into<String>, target: impl Into<String>) -> Self {
        PathConstraint::Require {
            source: source.into(),
            kind: RelKind::Child,
            target: target.into(),
        }
    }

    /// No `upper` node may have a `lower` descendant.
    pub fn no_descendant(upper: impl Into<String>, lower: impl Into<String>) -> Self {
        PathConstraint::Forbid {
            upper: upper.into(),
            kind: ForbidKind::Descendant,
            lower: lower.into(),
        }
    }

    /// No `upper` node may have a `lower` child.
    pub fn no_child(upper: impl Into<String>, lower: impl Into<String>) -> Self {
        PathConstraint::Forbid { upper: upper.into(), kind: ForbidKind::Child, lower: lower.into() }
    }
}

impl fmt::Display for PathConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathConstraint::RequireLabel(l) => write!(f, "◇{l}"),
            PathConstraint::Require { source, kind, target } => {
                write!(f, "{source} →{kind} {target}")
            }
            PathConstraint::Forbid { upper, kind, lower } => {
                write!(f, "{upper} ↛{kind} {lower}")
            }
        }
    }
}

/// A set of path constraints — the semi-structured bounding-schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    constraints: Vec<PathConstraint>,
}

impl ConstraintSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint (builder style).
    pub fn with(mut self, c: PathConstraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Adds a constraint.
    pub fn push(&mut self, c: PathConstraint) {
        self.constraints.push(c);
    }

    /// The constraints.
    pub fn constraints(&self) -> &[PathConstraint] {
        &self.constraints
    }

    /// Every label mentioned, lowercased and deduplicated.
    pub fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .constraints
            .iter()
            .flat_map(|c| match c {
                PathConstraint::RequireLabel(l) => vec![l.clone()],
                PathConstraint::Require { source, target, .. } => {
                    vec![source.clone(), target.clone()]
                }
                PathConstraint::Forbid { upper, lower, .. } => vec![upper.clone(), lower.clone()],
            })
            .map(|l| l.to_ascii_lowercase())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let c = PathConstraint::descendant("person", "name");
        assert_eq!(c.to_string(), "person →de name");
        assert_eq!(
            PathConstraint::no_descendant("country", "country").to_string(),
            "country ↛de country"
        );
        assert_eq!(PathConstraint::RequireLabel("db".into()).to_string(), "◇db");
        assert_eq!(PathConstraint::child("a", "b").to_string(), "a →ch b");
        assert_eq!(PathConstraint::no_child("a", "b").to_string(), "a ↛ch b");
    }

    #[test]
    fn label_collection() {
        let set = ConstraintSet::new()
            .with(PathConstraint::descendant("Person", "name"))
            .with(PathConstraint::no_descendant("country", "country"))
            .with(PathConstraint::RequireLabel("db".into()));
        assert_eq!(set.labels(), ["country", "db", "name", "person"]);
        assert_eq!(set.len(), 3);
    }
}
