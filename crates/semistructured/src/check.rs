//! Constraint checking and consistency for semi-structured data — by
//! reduction to the LDAP bounding-schema machinery.
//!
//! A [`ConstraintSet`] is compiled to a [`DirectorySchema`] whose core
//! classes are the labels (all direct children of `top`, so no inheritance
//! interactions), and a [`DataGraph`] is already encoded as a directory
//! instance. §3's legality testing and §5's consistency testing then apply
//! verbatim — which is precisely the paper's §6 claim of wider
//! applicability.

use bschema_core::consistency::ConsistencyChecker;
use bschema_core::legality::{LegalityChecker, Violation};
use bschema_core::schema::DirectorySchema;

use crate::constraint::{ConstraintSet, PathConstraint};
use crate::model::{DataGraph, NodeId};

/// A constraint violation located at a node (or global for missing labels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintViolation {
    /// The node at fault, when node-specific.
    pub node: Option<NodeId>,
    /// The violated constraint, rendered.
    pub constraint: String,
    /// Full description.
    pub message: String,
}

/// Compiles a constraint set to a directory bounding-schema over the label
/// vocabulary of `extra_labels ∪ constraint labels`.
pub fn compile(constraints: &ConstraintSet, extra_labels: &[String]) -> DirectorySchema {
    let mut builder = DirectorySchema::builder().named("semistructured constraints");
    let mut labels = constraints.labels();
    for l in extra_labels {
        let l = l.to_ascii_lowercase();
        if !labels.contains(&l) {
            labels.push(l);
        }
    }
    labels.sort_unstable();
    labels.dedup();
    for label in &labels {
        if !label.eq_ignore_ascii_case("top") {
            builder = builder.core_class(label, "top").expect("labels are deduplicated");
        }
        // Value leaves carry a `value` attribute.
        builder = builder.allow_attrs(label, ["value"]).expect("label just declared");
    }
    builder = builder.allow_attrs("top", ["value"]).expect("top exists");
    for c in constraints.constraints() {
        builder = match c {
            PathConstraint::RequireLabel(l) => builder.require_class(l),
            PathConstraint::Require { source, kind, target } => {
                builder.require_rel(source, *kind, target)
            }
            PathConstraint::Forbid { upper, kind, lower } => {
                builder.forbid_rel(upper, *kind, lower)
            }
        }
        .expect("constraint labels were declared");
    }
    builder.build()
}

/// Checks `graph` against `constraints`, returning all violations.
pub fn check(graph: &mut DataGraph, constraints: &ConstraintSet) -> Vec<ConstraintViolation> {
    let labels = graph.labels();
    let schema = compile(constraints, &labels);
    let dir = graph.as_directory();
    LegalityChecker::new(&schema)
        .check(dir)
        .into_iter()
        .map(|v| {
            let node = v.entry().map(NodeId);
            let constraint = match &v {
                Violation::MissingRequiredClass { class } => format!("◇{class}"),
                Violation::RequiredRelViolation { source, kind, target, .. } => {
                    format!("{source} →{kind} {target}")
                }
                Violation::ForbiddenRelViolation { upper, kind, lower, .. } => {
                    format!("{upper} ↛{kind} {lower}")
                }
                other => format!("{other}"),
            };
            ConstraintViolation { node, constraint, message: v.to_string() }
        })
        .collect()
}

/// Whether `graph` satisfies `constraints`.
pub fn satisfies(graph: &mut DataGraph, constraints: &ConstraintSet) -> bool {
    check(graph, constraints).is_empty()
}

/// Whether the constraint set admits any finite tree at all (§5 applied to
/// §6 constraints).
pub fn is_satisfiable(constraints: &ConstraintSet) -> bool {
    let schema = compile(constraints, &[]);
    ConsistencyChecker::new(&schema).check().is_consistent()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §6.3 person/name example.
    #[test]
    fn person_needs_name_descendant() {
        let constraints = ConstraintSet::new().with(PathConstraint::descendant("person", "name"));

        let mut good = DataGraph::new();
        let db = good.add_root("db");
        let p = good.add_child(db, "person");
        let info = good.add_child(p, "info"); // unbounded path length
        good.add_value_child(info, "name", "laks");
        assert!(satisfies(&mut good, &constraints));

        let mut bad = DataGraph::new();
        let db = bad.add_root("db");
        let p = bad.add_child(db, "person");
        bad.add_value_child(p, "age", "42");
        let violations = check(&mut bad, &constraints);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].constraint, "person →de name");
        assert_eq!(violations[0].node, Some(NodeId(p.0)));
    }

    /// The paper's §6.3 country/corporation example: countries may contain
    /// corporations, corporations may contain countries and corporations,
    /// but no country may sit below another country.
    #[test]
    fn country_corporation_nesting() {
        let constraints =
            ConstraintSet::new().with(PathConstraint::no_descendant("country", "country"));

        let mut good = DataGraph::new();
        let world = good.add_root("db");
        let us = good.add_child(world, "country");
        let conglomerate = good.add_child(us, "corporation"); // national corp
        let subsidiary = good.add_child(conglomerate, "corporation"); // conglomerate
        let _ = subsidiary;
        assert!(satisfies(&mut good, &constraints));

        // An international corporation under a country would nest countries.
        let mut bad = good.clone();
        let intl = bad.add_child(conglomerate, "country");
        let _ = intl;
        let violations = check(&mut bad, &constraints);
        assert!(!violations.is_empty());
        assert!(violations.iter().all(|v| v.constraint == "country ↛de country"));

        // But an international corporation at the top level is fine.
        let mut ok = DataGraph::new();
        let root = ok.add_root("corporation");
        ok.add_child(root, "country");
        ok.add_child(root, "country");
        assert!(satisfies(&mut ok, &constraints));
    }

    #[test]
    fn required_label() {
        let constraints = ConstraintSet::new().with(PathConstraint::RequireLabel("db".into()));
        let mut g = DataGraph::new();
        g.add_root("person");
        assert!(!satisfies(&mut g, &constraints));
        g.add_root("db");
        assert!(satisfies(&mut g, &constraints));
    }

    #[test]
    fn satisfiability_transfer() {
        // person needs a name descendant and forbids name descendants: only
        // satisfiable by trees with no person nodes; requiring a person node
        // tips it over.
        let base = ConstraintSet::new()
            .with(PathConstraint::descendant("person", "name"))
            .with(PathConstraint::no_descendant("person", "name"));
        assert!(is_satisfiable(&base));
        let with_req = base.with(PathConstraint::RequireLabel("person".into()));
        assert!(!is_satisfiable(&with_req));
    }

    #[test]
    fn unconstrained_graph_is_fine() {
        let mut g = DataGraph::new();
        g.add_root("anything");
        assert!(satisfies(&mut g, &ConstraintSet::new()));
    }
}
