//! The shared directory service behind every connection.
//!
//! [`DirectoryService`] is the concurrency layer of the server: it wraps
//! one [`ManagedDirectory`] so that
//!
//! * **reads** (`SEARCH`) are served from an immutable snapshot — an
//!   `Arc<DirectoryInstance>` cloned out of an `RwLock` in O(1), after
//!   which the search runs with **no lock held**, and
//! * **writes** (`TXN`, `MODIFY`) are serialized through a single mutex
//!   around the journaled [`ManagedDirectory::apply`] path, with the
//!   snapshot swapped only after the transaction has been certified
//!   legal and committed.
//!
//! Readers therefore observe a sequence of complete, legal instances —
//! either the pre-transaction or the post-transaction state, never a
//! partially applied one. That holds even when a write worker panics
//! mid-transaction: `ManagedDirectory`'s guarded apply restores its own
//! state, the snapshot is only swapped after success, and both locks are
//! recovered from poisoning (`into_inner`), so the next writer proceeds
//! against an intact instance. This is the paper's §4 atomicity contract
//! lifted to a shared, concurrent frontend.
//!
//! ## The sharded backend
//!
//! [`DirectoryService::new_sharded`] swaps the single engine for a
//! [`ShardedDirectory`]: the forest is partitioned by **top-level
//! subtree** — the unit Theorem 4.1 proves transactions decompose into —
//! and every `TXN` is routed by the root RDNs of its DNs. A transaction
//! whose records all live in one shard takes only that shard's lock, so
//! writes to distinct shards commit concurrently; a cross-shard
//! transaction goes through the router's 2-phase apply (prepare on every
//! involved shard, then commit everywhere or roll back everywhere).
//! Each shard publishes its **own** snapshot: readers still only ever
//! observe complete, §3-legal states, and an unscoped search simply
//! fans out over the per-shard snapshots in shard order.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use bschema_core::checkpoint::{
    checkpoint_path, recover_with_checkpoint, schema_hash, truncate_journal, write_checkpoint,
    Checkpoint,
};
use bschema_core::evolution::plan::{parse_proposal, EvolutionPlan, PlanError};
use bschema_core::journal::{shard_journal_path, Journal, JournalTx, JournalWriter};
use bschema_core::legality::LegalityReport;
use bschema_core::managed::ManagedError;
use bschema_core::schema::DirectorySchema;
use bschema_core::sharded::{canonical_merge, ShardedDirectory};
use bschema_core::updates::{transaction_from_ldif, Mod};
use bschema_core::ManagedDirectory;
use bschema_directory::ldif::{parse_ldif_limited, write_record, LdifLimits, LdifRecord};
use bschema_directory::{DirectoryInstance, Dn};
use bschema_obs::{
    AlertEdge, FlightRecorder, HealthReport, MetricsSnapshot, Probe, RequestTrace, ShardHealth,
    Signal, SpanNode, NO_SPAN,
};
use bschema_query::{
    explain, parse_filter_limited, search, EvalContext, Query, SearchRequest, SearchScope,
    DEFAULT_FILTER_DEPTH,
};

use crate::codec::WireLimits;
use crate::monitor::Monitor;

/// Resource bounds for everything that arrives over the socket.
#[derive(Debug, Clone)]
pub struct ServiceLimits {
    /// Bounds on LDIF payloads (`TXN` bodies). Defaults to
    /// [`LdifLimits::strict`] — the untrusted-input profile.
    pub ldif: LdifLimits,
    /// Maximum filter nesting depth accepted from `SEARCH`.
    pub filter_depth: usize,
    /// Frame-level bounds (header and payload size).
    pub wire: WireLimits,
}

impl Default for ServiceLimits {
    fn default() -> Self {
        ServiceLimits {
            ldif: LdifLimits::strict(),
            filter_depth: DEFAULT_FILTER_DEPTH,
            wire: WireLimits::default(),
        }
    }
}

/// A request the service refused. `code` is the stable wire code echoed
/// in `ERR <code>` responses; `detail` is the human-readable payload.
///
/// For every code except `io`, a rejected write leaves the directory
/// byte-identical to its pre-request state (see
/// `DirectoryInstance::canonical_bytes`) — the loopback suite asserts
/// exactly this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Stable machine-readable code (`bad-ldif`, `illegal-instance`, …).
    pub code: &'static str,
    /// Human-readable explanation.
    pub detail: String,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    fn new(code: &'static str, detail: impl Into<String>) -> Self {
        ServiceError { code, detail: detail.into() }
    }

    fn from_managed(e: &ManagedError) -> Self {
        ServiceError { code: e.code(), detail: e.to_string() }
    }
}

/// What a committed write changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxOutcome {
    /// Operations in the transaction (insertions + deletions; 1 for a
    /// `MODIFY`).
    pub ops: usize,
    /// Directory size after the commit.
    pub len: usize,
    /// Shards the transaction touched (always 1 on the single-engine
    /// backend; > 1 means the 2-phase cross-shard path committed it).
    pub shards: usize,
}

/// An open journal file: the parsed history has been replayed/repaired
/// at attach time, and `writer` continues its id sequence.
#[derive(Debug)]
struct JournalFile {
    path: PathBuf,
    writer: JournalWriter,
}

/// The write half: everything a committing transaction touches, behind
/// one mutex so writes are strictly serialized.
#[derive(Debug)]
struct WriteHalf {
    managed: ManagedDirectory,
    journal: Option<JournalFile>,
    /// Commits since the last checkpoint — the trigger counter for
    /// `--checkpoint-every`. Mutated only under the write mutex.
    since_checkpoint: u64,
}

/// The classic backend: one engine, one write mutex, one snapshot.
#[derive(Debug)]
struct SingleBackend {
    write: Mutex<WriteHalf>,
    snapshot: RwLock<Arc<DirectoryInstance>>,
}

/// The sharded backend: a [`ShardedDirectory`] routes each `TXN` to the
/// shards owning its top-level subtrees (Theorem 4.1 boundaries), so
/// writes to distinct shards never contend. Each shard publishes its own
/// read snapshot; searches fan out across them in shard order.
#[derive(Debug)]
struct ShardedBackend {
    sharded: ShardedDirectory,
    snapshots: Vec<RwLock<Arc<DirectoryInstance>>>,
    /// The journal family base path (`<base>.shard<k>` per shard) when
    /// journaling is attached — the checkpoint campaign derives its
    /// per-shard checkpoint paths from this.
    journal_base: Option<PathBuf>,
    /// Commits since the last checkpoint campaign. An atomic (not under
    /// any one shard's lock) because single-shard commits proceed in
    /// parallel; the worst race is one extra campaign, which is
    /// idempotent.
    commits_since_checkpoint: AtomicU64,
}

impl ShardedBackend {
    fn new(sharded: ShardedDirectory) -> Self {
        let snapshots = (0..sharded.shards())
            .map(|k| RwLock::new(Arc::new(sharded.shard_instance(k))))
            .collect();
        ShardedBackend {
            sharded,
            snapshots,
            journal_base: None,
            commits_since_checkpoint: AtomicU64::new(0),
        }
    }

    /// Shard `k`'s published read snapshot.
    fn snapshot(&self, k: usize) -> Arc<DirectoryInstance> {
        self.snapshots[k].read().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[derive(Debug)]
enum Backend {
    Single(SingleBackend),
    Sharded(ShardedBackend),
}

/// Fault/probe site visited while serving a `SHIP` tail to a follower,
/// before any journal bytes are read. Injecting a panic here makes the
/// follower see `ERR panicked` and retry — the primary's state is
/// untouched (nothing has been mutated).
pub const SITE_SHIP_SERVE: &str = "ship.serve";

/// Fault/probe site visited by a follower just before applying a
/// shipped transaction. Injecting a panic here kills the sync pass with
/// the replica's instance intact (the guarded apply has not started),
/// so the next pass re-ships and converges.
pub const SITE_SHIP_APPLY: &str = "ship.apply";

/// Replication-lag gauges shared between a follower's ship loop (which
/// stamps them after every sync) and the `HEALTH` plane (which judges
/// them). All values are monotone or last-write-wins, so plain relaxed
/// atomics suffice.
#[derive(Debug, Default)]
pub struct ReplicationState {
    /// Highest journal seq the follower has applied through.
    applied_seq: AtomicU64,
    /// The primary's journal cursor observed at the last successful ship.
    source_seq: AtomicU64,
    /// µs-since-service-origin of the last successful ship exchange.
    last_ship_us: AtomicU64,
    /// Checkpoint bootstraps: 1 after the initial attach, +1 for every
    /// `ship-gap` re-bootstrap.
    bootstraps: AtomicU64,
    /// Failed ship exchanges (connection drops, injected faults, …).
    errors: AtomicU64,
}

impl ReplicationState {
    /// Stamps a successful ship: the follower applied through `applied`
    /// while the primary's cursor stood at `source`, observed at `at_us`.
    pub fn record_ship(&self, applied: u64, source: u64, at_us: u64) {
        self.applied_seq.store(applied, Ordering::Relaxed);
        self.source_seq.store(source, Ordering::Relaxed);
        self.last_ship_us.store(at_us, Ordering::Relaxed);
    }

    /// Counts a checkpoint bootstrap (initial attach or `ship-gap`).
    pub fn record_bootstrap(&self) {
        self.bootstraps.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a failed ship exchange.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Journal records the replica is behind the primary.
    pub fn lag(&self) -> u64 {
        let source = self.source_seq.load(Ordering::Relaxed);
        source.saturating_sub(self.applied_seq.load(Ordering::Relaxed))
    }

    /// Highest journal seq applied on the replica.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Relaxed)
    }

    /// The primary's cursor at the last successful ship.
    pub fn source_seq(&self) -> u64 {
        self.source_seq.load(Ordering::Relaxed)
    }

    /// µs-since-origin of the last successful ship (0 = never).
    pub fn last_ship_us(&self) -> u64 {
        self.last_ship_us.load(Ordering::Relaxed)
    }

    /// Total checkpoint bootstraps.
    pub fn bootstraps(&self) -> u64 {
        self.bootstraps.load(Ordering::Relaxed)
    }

    /// Total failed ship exchanges.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

/// A staged schema evolution: the parsed [`EvolutionPlan`] plus the
/// freshness token of its last successful off-write-path recheck.
#[derive(Debug)]
struct StagedEvolution {
    plan: EvolutionPlan,
    /// `commit_counter` observed when `SCHEMA CHECK` passed; `None`
    /// until a check passes (and again after a failed one). When it
    /// still equals the live counter at `SCHEMA COMMIT` time on the
    /// single backend, nothing committed since the checked snapshot, so
    /// the commit can skip the under-lock recheck entirely.
    checked_at: Option<u64>,
}

/// The shared, thread-safe directory service. See the module docs for
/// the snapshot/write-lock protocol.
#[derive(Debug)]
pub struct DirectoryService {
    backend: Backend,
    probe: Arc<dyn Probe + Send + Sync>,
    recorder: Option<Arc<bschema_obs::Recorder>>,
    flight: Option<Arc<FlightRecorder>>,
    monitor: Option<Arc<Monitor>>,
    /// The service's monotonic epoch: tick timestamps and snapshot-swap
    /// stamps are microseconds since this instant.
    origin: Instant,
    /// Per-shard µs-since-`origin` of the last snapshot publish (index 0
    /// on the single backend). 0 = never swapped, so age reads as
    /// time-since-start.
    last_swap_us: Vec<AtomicU64>,
    stats_baseline: Mutex<MetricsSnapshot>,
    limits: ServiceLimits,
    /// Checkpoint + truncate the journal every N commits (`None` =
    /// never; explicit `CHECKPOINT`/`checkpoint_now` still works).
    checkpoint_every: Option<u64>,
    /// A read replica: every write verb is refused with the stable
    /// `read-only` code; mutations arrive only through
    /// [`replicate_tx`](DirectoryService::replicate_tx).
    read_only: bool,
    /// Replication-lag gauges, present when this service is a follower.
    replication: Option<Arc<ReplicationState>>,
    /// The evolution plane: at most one staged schema proposal at a
    /// time (`SCHEMA PROPOSE` → `CHECK` → `COMMIT`/`ABORT`).
    evolution: Mutex<Option<StagedEvolution>>,
    /// Completed schema cutovers since this service started — the
    /// `HEALTH` plane's `schema_epoch` signal. A restart resets it; the
    /// schema *hash* identifies a schema across restarts.
    schema_epoch: AtomicU64,
    /// Committed writes (TXN + MODIFY). On the single backend this is
    /// bumped under the write mutex, making it a sound freshness token
    /// for `SCHEMA CHECK`/`COMMIT`; on the sharded backend bumps race
    /// past the shard locks, so the cutover path always rechecks under
    /// its own locks instead of trusting the counter.
    commit_counter: AtomicU64,
}

/// Locks here never stay poisoned: a panicking writer's state was
/// already restored by the guarded apply, so the lock contents are
/// intact and the next holder may proceed.
fn lock_unpoisoned<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

impl DirectoryService {
    /// Wraps a managed directory. The initial snapshot is the current
    /// instance.
    pub fn new(managed: ManagedDirectory) -> Self {
        let snapshot = Arc::new(managed.instance().clone());
        Self::from_backend(Backend::Single(SingleBackend {
            write: Mutex::new(WriteHalf { managed, journal: None, since_checkpoint: 0 }),
            snapshot: RwLock::new(snapshot),
        }))
    }

    /// Wraps a sharded directory: `dir` is validated and partitioned
    /// into `shards` top-level-subtree shards (see
    /// [`ShardedDirectory::with_instance`]); transactions are routed by
    /// DN prefix so writes to distinct shards commit concurrently.
    pub fn new_sharded(
        schema: DirectorySchema,
        dir: DirectoryInstance,
        shards: usize,
    ) -> Result<Self, ServiceError> {
        let sharded = ShardedDirectory::with_instance(schema, dir, shards)
            .map_err(|e| ServiceError::from_managed(&e))?;
        Ok(Self::from_backend(Backend::Sharded(ShardedBackend::new(sharded))))
    }

    fn from_backend(backend: Backend) -> Self {
        let shards = match &backend {
            Backend::Single(_) => 1,
            Backend::Sharded(b) => b.sharded.shards(),
        };
        DirectoryService {
            backend,
            probe: Arc::new(bschema_obs::NoopProbe),
            recorder: None,
            flight: None,
            monitor: None,
            origin: Instant::now(),
            last_swap_us: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            stats_baseline: Mutex::new(MetricsSnapshot::default()),
            limits: ServiceLimits::default(),
            checkpoint_every: None,
            read_only: false,
            replication: None,
            evolution: Mutex::new(None),
            schema_epoch: AtomicU64::new(0),
            commit_counter: AtomicU64::new(0),
        }
    }

    /// Number of write shards behind this service (1 for the classic
    /// single-engine backend).
    pub fn shards(&self) -> usize {
        match &self.backend {
            Backend::Single(_) => 1,
            Backend::Sharded(b) => b.sharded.shards(),
        }
    }

    /// Replaces the resource limits.
    pub fn with_limits(mut self, limits: ServiceLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Attaches `probe` to the request path **and** to the inner
    /// engine(s), so one probe sees both the `server.*` sites and the
    /// legality engine's counters/spans (plus, on a sharded backend,
    /// the router's `sharded.*` 2-phase sites).
    pub fn with_probe(self, probe: Arc<dyn Probe + Send + Sync>) -> Self {
        let backend = match self.backend {
            Backend::Single(b) => {
                let half = b.write.into_inner().unwrap_or_else(|e| e.into_inner());
                Backend::Single(SingleBackend {
                    write: Mutex::new(WriteHalf {
                        managed: half.managed.with_probe(probe.clone()),
                        journal: half.journal,
                        since_checkpoint: half.since_checkpoint,
                    }),
                    snapshot: b.snapshot,
                })
            }
            Backend::Sharded(b) => Backend::Sharded(ShardedBackend {
                sharded: b.sharded.with_probe(probe.clone()),
                snapshots: b.snapshots,
                journal_base: b.journal_base,
                commits_since_checkpoint: b.commits_since_checkpoint,
            }),
        };
        DirectoryService {
            backend,
            probe,
            recorder: self.recorder,
            flight: self.flight,
            monitor: self.monitor,
            origin: self.origin,
            last_swap_us: self.last_swap_us,
            stats_baseline: self.stats_baseline,
            limits: self.limits,
            checkpoint_every: self.checkpoint_every,
            read_only: self.read_only,
            replication: self.replication,
            evolution: self.evolution,
            schema_epoch: self.schema_epoch,
            commit_counter: self.commit_counter,
        }
    }

    /// Checkpoints + truncates the journal after every `every` commits
    /// (clamped to at least 1). Needs a journal attached to take effect;
    /// on the sharded backend this runs the all-shard campaign.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = Some(every.max(1));
        self
    }

    /// Turns this service into a read replica: `TXN` and `MODIFY` are
    /// refused with the stable `read-only` code, and mutations arrive
    /// only through [`replicate_tx`](DirectoryService::replicate_tx).
    pub fn with_read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// Whether this service refuses client writes.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Attaches the replication-lag gauges a follower's ship loop
    /// updates; `HEALTH` then reports `replication_lag_records` and
    /// `ship_age_s` signals plus a `replication` section.
    pub fn with_replication(mut self, replication: Arc<ReplicationState>) -> Self {
        self.replication = Some(replication);
        self
    }

    /// The attached replication gauges, if this service is a follower.
    pub fn replication(&self) -> Option<&Arc<ReplicationState>> {
        self.replication.as_ref()
    }

    /// Attaches the recorder the `METRICS` verb reads from. This only
    /// wires up the export side — to actually collect, pass the same
    /// recorder (or a fault plan forwarding to it) to
    /// [`with_probe`](DirectoryService::with_probe).
    pub fn with_recorder(mut self, recorder: Arc<bschema_obs::Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The recorder's combined trace + metrics state as one JSON line,
    /// or `None` when no recorder is attached.
    pub fn metrics_json(&self) -> Option<String> {
        self.recorder.as_ref().map(|r| r.to_json())
    }

    /// Attaches the flight recorder the `TRACE` verb reads from. This
    /// also switches request handling into traced mode: every frame gets
    /// a [`RequestTrace`] whose completed span tree is admitted here.
    pub fn with_flight_recorder(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Attaches the monitor plane the `HEALTH`/`WATCH` verbs and the
    /// sampler thread share. The sampler itself is spawned by
    /// [`Server::spawn`](crate::server::Server::spawn) when a monitor
    /// is present.
    pub fn with_monitor(mut self, monitor: Arc<Monitor>) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// The attached monitor plane, if any.
    pub fn monitor(&self) -> Option<&Arc<Monitor>> {
        self.monitor.as_ref()
    }

    /// Microseconds since this service was constructed — the clock tick
    /// timestamps and snapshot-swap stamps are taken on.
    pub fn uptime_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// The flight recorder's buffer as one JSON line, or `None` when the
    /// server runs without `--trace`.
    pub fn trace_json(&self) -> Option<String> {
        self.flight.as_ref().map(|f| f.to_json())
    }

    /// One scrape of the `STATS` verb: the counter/histogram **deltas**
    /// since the previous call (the first call deltas against zero), as
    /// stable-ordered JSON. Series idle over the interval are omitted.
    /// `None` when no recorder is attached.
    pub fn stats_json(&self) -> Option<String> {
        let recorder = self.recorder.as_ref()?;
        let current = recorder.metrics().snapshot();
        let mut baseline = lock_unpoisoned(&self.stats_baseline);
        let delta = current.delta_since(&baseline);
        *baseline = current;
        Some(delta.to_json())
    }

    /// Opens a per-request trace rooted at `root_name`, or `None` when
    /// the service runs untraced (no flight recorder attached). The
    /// trace forwards counters to the service probe while collecting the
    /// request's span tree privately.
    pub fn begin_trace(&self, root_name: &'static str) -> Option<Arc<RequestTrace>> {
        self.flight.as_ref()?;
        Some(Arc::new(RequestTrace::new(self.probe.clone(), root_name)))
    }

    /// Attaches a write-ahead journal at `path`, recovering any existing
    /// state first through the checkpoint-aware ladder: when a sibling
    /// checkpoint file (`<path>.ckpt`) is present and intact, the forest
    /// is restored from it and only the journal **tail** (records past
    /// the checkpoint's covered seq) replays through the checked apply
    /// path; otherwise the whole journal replays from the seed `base`.
    /// A torn journal tail (crash during a write) is repaired in place
    /// by truncating the file to its intact prefix, and the writer
    /// resumes after the highest recorded seq on either source. Returns
    /// the number of transactions replayed (tail only, after a
    /// checkpoint restore).
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Result<(Self, usize), ServiceError> {
        let path = path.into();
        let Backend::Single(backend) = &mut self.backend else {
            return self.with_sharded_journal(path);
        };
        let journal = read_repaired_journal(&path)?;
        let ckpt_text = read_optional(&checkpoint_path(&path))?;
        let replayed;
        {
            let half = backend.write.get_mut().unwrap_or_else(|e| e.into_inner());
            // Recovery rebuilds the managed directory, so the probe the
            // builder chain attached earlier moves over to the recovered
            // engine.
            let probe = half.managed.swap_probe(None);
            let schema = half.managed.schema().clone();
            let base = half.managed.instance().clone();
            let recovery = recover_with_checkpoint(schema, base, ckpt_text.as_deref(), &journal)
                .map_err(|e| ServiceError::new("recovery", e.to_string()))?;
            replayed = recovery.report.replayed;
            // `STATUS`'s epoch counter survives the restart: every
            // schema record the replay applied is a cutover this state
            // has absorbed (evolutions folded into a used checkpoint are
            // its epoch-0 baseline).
            let epoch_base = recovery.checkpoint_seq.unwrap_or(0);
            let replayed_epochs = journal
                .committed()
                .filter(|jtx| jtx.schema.is_some() && jtx.first_seq >= epoch_base)
                .count() as u64;
            self.schema_epoch.store(replayed_epochs, Ordering::SeqCst);
            let mut managed = recovery.managed;
            managed.swap_probe(probe);
            half.managed = managed;
            half.journal = Some(JournalFile { path, writer: recovery.writer });
            let refreshed = Arc::new(half.managed.instance().clone());
            *backend.snapshot.write().unwrap_or_else(|e| e.into_inner()) = refreshed;
        }
        Ok((self, replayed))
    }

    /// The sharded counterpart of
    /// [`with_journal`](DirectoryService::with_journal): `base` names a
    /// family of per-shard journal files (`<base>.shard<k>`, see
    /// [`shard_journal_path`]). Each file's torn tail is repaired in
    /// place, 2-phase commits torn between peers are reconciled (a `gid`
    /// counts as committed only when every peer holds its commit
    /// record), the committed history replays shard by shard, and each
    /// shard's writer resumes appending to its own file. Returns the
    /// total transactions replayed across shards.
    fn with_sharded_journal(mut self, base: PathBuf) -> Result<(Self, usize), ServiceError> {
        let probe = self.probe.clone();
        let Backend::Sharded(backend) = &mut self.backend else {
            return Err(ServiceError::new("internal", "sharded journal on a single backend"));
        };
        let shards = backend.sharded.shards();
        let mut journals = Vec::with_capacity(shards);
        let mut paths = Vec::with_capacity(shards);
        for k in 0..shards {
            let path = shard_journal_path(&base, k);
            journals.push(read_repaired_journal(&path)?);
            paths.push(path);
        }
        let mut checkpoints = Vec::with_capacity(shards);
        for path in &paths {
            checkpoints.push(read_optional(&checkpoint_path(path))?);
        }
        let bases = (0..shards).map(|k| backend.sharded.shard_instance(k)).collect();
        let (recovered, reports) = ShardedDirectory::recover_with_checkpoints(
            backend.sharded.schema(),
            bases,
            &checkpoints,
            &journals,
        )
        .map_err(|e| ServiceError::new("recovery", e.to_string()))?;
        let replayed = reports.iter().map(|r| r.replayed).sum();
        // `STATUS`'s epoch counter survives the restart. Every shard
        // journals its own copy of each schema record, so shard 0 stands
        // in for the family; records folded into its checkpoint are the
        // recovered state's epoch-0 baseline.
        let epoch_base = checkpoints[0]
            .as_deref()
            .and_then(|text| Checkpoint::decode(text).ok())
            .map(|ckpt| ckpt.seq)
            .unwrap_or(0);
        let replayed_epochs = journals[0]
            .committed()
            .filter(|jtx| jtx.schema.is_some() && jtx.first_seq >= epoch_base)
            .count() as u64;
        self.schema_epoch.store(replayed_epochs, Ordering::SeqCst);
        // Recovery rebuilds the engine, so the service probe (attached
        // before this call in the builder chain) is re-installed.
        let recovered = recovered.with_probe(probe);
        for (k, path) in paths.into_iter().enumerate() {
            recovered.set_sink(k, Box::new(move |text: &str| append_file(&path, text)));
        }
        *backend = ShardedBackend::new(recovered);
        backend.journal_base = Some(base);
        Ok((self, replayed))
    }

    /// The configured limits.
    pub fn limits(&self) -> &ServiceLimits {
        &self.limits
    }

    /// The current read snapshot — a complete, legal instance. On the
    /// single backend this is cheap (one `Arc` clone under a read
    /// lock). On a sharded backend it is the **canonical merge** of the
    /// per-shard snapshots — an O(n) rebuild, meant for assertions and
    /// diagnostics, not the request path (searches fan out over
    /// [`shard_snapshot`](DirectoryService::shard_snapshot)s instead).
    pub fn snapshot(&self) -> Arc<DirectoryInstance> {
        match &self.backend {
            Backend::Single(b) => b.snapshot.read().unwrap_or_else(|e| e.into_inner()).clone(),
            Backend::Sharded(b) => {
                let parts: Vec<Arc<DirectoryInstance>> =
                    (0..b.snapshots.len()).map(|k| b.snapshot(k)).collect();
                let merged = canonical_merge(parts.iter().map(Arc::as_ref))
                    .expect("published shard snapshots merge");
                Arc::new(merged)
            }
        }
    }

    /// Shard `k`'s current read snapshot (`k = 0` on the single
    /// backend). Always cheap: one `Arc` clone under that shard's read
    /// lock.
    pub fn shard_snapshot(&self, k: usize) -> Arc<DirectoryInstance> {
        match &self.backend {
            Backend::Single(b) => b.snapshot.read().unwrap_or_else(|e| e.into_inner()).clone(),
            Backend::Sharded(b) => b.snapshot(k),
        }
    }

    /// Directory size, from the read snapshot(s).
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Single(b) => b.snapshot.read().unwrap_or_else(|e| e.into_inner()).len(),
            Backend::Sharded(b) => (0..b.snapshots.len()).map(|k| b.snapshot(k).len()).sum(),
        }
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serves a search: parses `filter_src` (depth-capped), resolves the
    /// optional base DN against the snapshot, and returns the matching
    /// entries as LDIF text. Runs entirely on the snapshot — no lock
    /// held during evaluation.
    pub fn search(
        &self,
        base: Option<&str>,
        scope: SearchScope,
        filter_src: &str,
        limit: Option<usize>,
    ) -> Result<(usize, String), ServiceError> {
        self.search_traced(base, scope, filter_src, limit, None)
    }

    /// [`search`](DirectoryService::search) with an optional per-request
    /// trace: the whole evaluation runs inside one `service.search` span
    /// hung under the request root.
    pub fn search_traced(
        &self,
        base: Option<&str>,
        scope: SearchScope,
        filter_src: &str,
        limit: Option<usize>,
        trace: Option<&Arc<RequestTrace>>,
    ) -> Result<(usize, String), ServiceError> {
        let probe = self.request_probe(trace);
        let span = probe.span_start(NO_SPAN, "service.search", 0);
        let result = self.search_inner(base, scope, filter_src, limit, probe);
        probe.span_end(span);
        result
    }

    fn search_inner(
        &self,
        base: Option<&str>,
        scope: SearchScope,
        filter_src: &str,
        limit: Option<usize>,
        probe: &dyn Probe,
    ) -> Result<(usize, String), ServiceError> {
        let plan = self.build_search(base, scope, filter_src)?;
        let mut out = String::new();
        let mut total = 0usize;
        let mut remaining = limit;
        for (i, (_, snapshot, mut request)) in plan.into_iter().enumerate() {
            if let Some(r) = remaining {
                if r == 0 && i > 0 {
                    break;
                }
                request = request.with_size_limit(r);
            }
            let ids = search(&snapshot, &request);
            for &id in &ids {
                let dn =
                    snapshot.dn(id).map_err(|e| ServiceError::new("internal", e.to_string()))?;
                let entry = snapshot
                    .entry(id)
                    .ok_or_else(|| ServiceError::new("internal", format!("dangling id {id}")))?;
                write_record(&mut out, &dn.to_string(), entry);
            }
            total += ids.len();
            if let Some(r) = &mut remaining {
                *r -= ids.len().min(*r);
            }
        }
        probe.add("server.search_entries", total as u64);
        Ok((total, out))
    }

    /// EXPLAIN for a search: runs the filter through the plan-recording
    /// evaluator and returns `(returned, json)` where `json` describes
    /// the evaluation plan — access path per step (index reused, seeded
    /// scan, or full scan), candidate-set sizes, entries scanned vs.
    /// matched — plus the scope restriction and final result count.
    /// The snapshot is not mutated and no counters are emitted.
    pub fn search_explain(
        &self,
        base: Option<&str>,
        scope: SearchScope,
        filter_src: &str,
        limit: Option<usize>,
    ) -> Result<(usize, String), ServiceError> {
        let plan = self.build_search(base, scope, filter_src)?;
        let mut total = 0usize;
        let mut remaining = limit;
        let mut reports: Vec<(usize, String)> = Vec::new();
        for (i, (k, snapshot, mut request)) in plan.into_iter().enumerate() {
            if let Some(r) = remaining {
                if r == 0 && i > 0 {
                    break;
                }
                request = request.with_size_limit(r);
            }
            let report =
                explain(&EvalContext::new(&snapshot), &Query::select(request.filter.clone()));
            let found = search(&snapshot, &request).len();
            total += found;
            if let Some(r) = &mut remaining {
                *r -= found.min(*r);
            }
            reports.push((k, report.to_json()));
        }
        let scope_name = match scope {
            SearchScope::Base => "base",
            SearchScope::OneLevel => "one",
            SearchScope::Subtree => "sub",
        };
        let head = format!(
            "{{\"scope\":{},\"base\":{},\"returned\":{total}",
            bschema_obs::json::escape(scope_name),
            base.map_or_else(|| "null".to_owned(), bschema_obs::json::escape),
        );
        let json = match &self.backend {
            Backend::Single(_) => {
                let report = reports.pop().map_or_else(|| "null".to_owned(), |(_, json)| json);
                format!("{head},\"explain\":{report}}}")
            }
            // Sharded: one plan per shard the search fanned out to, in
            // shard order, each labeled with its shard index.
            Backend::Sharded(_) => {
                let body: Vec<String> = reports
                    .into_iter()
                    .map(|(k, json)| format!("{{\"shard\":{k},\"explain\":{json}}}"))
                    .collect();
                format!("{head},\"shards\":[{}]}}", body.join(","))
            }
        };
        Ok((total, json))
    }

    /// Shared front half of the search paths: parse the filter
    /// (depth-capped) and assemble one `(shard, snapshot, request)`
    /// target per shard the search must visit — exactly one for a
    /// base-scoped search (a base DN's whole subtree lives on the shard
    /// owning its top-level RDN, the Theorem 4.1 boundary) or on the
    /// single backend; every shard in index order for an unscoped
    /// search on the sharded backend. Size limits are applied by the
    /// callers, which thread the remaining budget across targets.
    fn build_search(
        &self,
        base: Option<&str>,
        scope: SearchScope,
        filter_src: &str,
    ) -> Result<Vec<(usize, Arc<DirectoryInstance>, SearchRequest)>, ServiceError> {
        let filter = parse_filter_limited(filter_src, self.limits.filter_depth)
            .map_err(|e| ServiceError::new("bad-filter", e.to_string()))?;
        match base {
            Some(dn_src) => {
                let dn =
                    Dn::parse(dn_src).map_err(|e| ServiceError::new("bad-dn", e.to_string()))?;
                let k = match &self.backend {
                    Backend::Single(_) => 0,
                    Backend::Sharded(b) => b.sharded.shard_of_dn(&dn),
                };
                let snapshot = self.shard_snapshot(k);
                let id = snapshot.lookup_dn(&dn).ok_or_else(|| {
                    ServiceError::new("no-such-base", format!("no entry named {dn_src}"))
                })?;
                Ok(vec![(k, snapshot, SearchRequest::under(id, scope, filter))])
            }
            None => Ok((0..self.shards())
                .map(|k| {
                    let mut r = SearchRequest::whole_directory(filter.clone());
                    r.scope = scope;
                    (k, self.shard_snapshot(k), r)
                })
                .collect()),
        }
    }

    /// The probe a request's service-level spans and counters go
    /// through: the per-request trace when one is open, otherwise the
    /// shared service probe.
    fn request_probe<'a>(&'a self, trace: Option<&'a Arc<RequestTrace>>) -> &'a dyn Probe {
        match trace {
            Some(t) => t.as_ref(),
            None => &*self.probe,
        }
    }

    /// Applies an LDIF transaction body atomically: parse (bounded),
    /// build the transaction against the current instance, write-ahead
    /// `begin`, checked apply, `commit`, snapshot swap. On any rejection
    /// the instance — and the snapshot — are exactly what they were.
    pub fn apply_ldif_tx(&self, ldif: &str) -> Result<TxOutcome, ServiceError> {
        self.apply_ldif_tx_traced(ldif, None)
    }

    /// [`apply_ldif_tx`](DirectoryService::apply_ldif_tx) with an
    /// optional per-request trace. Each stage of the write path opens a
    /// `service.*` span, and the managed directory's probe is swapped to
    /// the trace for the duration of the apply, so the legality engine's
    /// span tree (down to each Figure 5 Δ-query) lands under this
    /// request's root instead of the shared tracer.
    pub fn apply_ldif_tx_traced(
        &self,
        ldif: &str,
        trace: Option<&Arc<RequestTrace>>,
    ) -> Result<TxOutcome, ServiceError> {
        let probe = self.request_probe(trace);
        if self.read_only {
            probe.add_labeled("server.tx_rejected", "read-only", 1);
            return Err(Self::read_only_refusal());
        }
        let records = scoped(probe, "service.parse_ldif", || {
            parse_ldif_limited(ldif, &self.limits.ldif)
                .map_err(|e| ServiceError::new("bad-ldif", e.to_string()))
        })?;
        let backend = match &self.backend {
            Backend::Single(b) => b,
            Backend::Sharded(b) => return self.apply_sharded(b, records, probe),
        };
        let mut half = lock_unpoisoned(&backend.write);
        // Fault site: a worker dying here has changed nothing.
        probe.add("server.tx_admitted", 1);
        let tx = scoped(probe, "service.tx_build", || {
            transaction_from_ldif(half.managed.instance(), records)
                .map_err(|e| ServiceError::new("invalid-tx", e.to_string()))
        })?;
        let ops = tx.len();

        // Write-ahead: the begin + op records must be durable before the
        // mutation, so a crash mid-apply leaves an uncommitted tail that
        // recovery discards.
        let tx_id = scoped(probe, "service.journal_begin", || match &mut half.journal {
            Some(journal) => {
                let id = journal.writer.begin(&tx);
                let pending = journal.writer.take_pending();
                append_file(&journal.path, &pending)
                    .map_err(|e| ServiceError::new("io", format!("journal begin: {e}")))?;
                Ok(Some(id))
            }
            None => Ok(None),
        })?;

        let applied = match trace {
            Some(t) => {
                // Route the legality engine's spans into this request's
                // tree. The swap is panic-safe: an injected fault inside
                // the guarded apply must not leave a dead trace wired
                // into the shared managed directory.
                let prev = half.managed.swap_probe(Some(t.clone() as Arc<dyn Probe + Send + Sync>));
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    half.managed.apply(&tx)
                }));
                half.managed.swap_probe(prev);
                match caught {
                    Ok(result) => result,
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            None => half.managed.apply(&tx),
        };

        match applied {
            Ok(()) => {
                scoped(probe, "service.journal_commit", || {
                    if let (Some(id), Some(journal)) = (tx_id, &mut half.journal) {
                        journal.writer.commit(id);
                        let pending = journal.writer.take_pending();
                        if append_file(&journal.path, &pending).is_err() {
                            // The in-memory instance is committed and
                            // legal; only durability degraded. Surface
                            // via probe, not by failing the
                            // already-applied request.
                            probe.add("server.journal_commit_io_error", 1);
                        }
                    }
                });
                let outcome = TxOutcome { ops, len: half.managed.len(), shards: 1 };
                scoped(probe, "service.publish", || self.publish_through(&half, probe));
                // Fault site: a worker dying here has already committed;
                // the client sees "panicked" (outcome unknown), readers
                // see the new legal instance.
                probe.add("server.tx_committed", 1);
                self.commit_counter.fetch_add(1, Ordering::SeqCst);
                self.maybe_checkpoint_single(&mut half);
                Ok(outcome)
            }
            Err(e) => {
                // Guarded apply restored the instance; the uncommitted
                // journal tail is discarded on next recovery.
                probe.add_labeled("server.tx_rejected", e.code(), 1);
                Err(ServiceError::from_managed(&e))
            }
        }
    }

    /// Applies an attribute-level modification to the entry named `dn`,
    /// atomically through the same guarded path. On a journaled server
    /// the modification is write-ahead logged as a `modify` record
    /// (mirroring the `TXN` begin/commit discipline), so recovery
    /// replays it; on the sharded backend it routes to the single shard
    /// owning the DN's top-level subtree — MODIFY never crosses a
    /// Theorem 4.1 boundary, so the 2-phase path is never needed.
    pub fn modify(&self, dn_src: &str, mods: &[Mod]) -> Result<TxOutcome, ServiceError> {
        if self.read_only {
            self.probe.add_labeled("server.tx_rejected", "read-only", 1);
            return Err(Self::read_only_refusal());
        }
        let dn = Dn::parse(dn_src).map_err(|e| ServiceError::new("bad-dn", e.to_string()))?;
        let backend = match &self.backend {
            Backend::Single(b) => b,
            Backend::Sharded(b) => return self.modify_sharded(b, &dn, mods),
        };
        let mut half = lock_unpoisoned(&backend.write);
        self.probe.add("server.tx_admitted", 1);
        let id = half.managed.instance().lookup_dn(&dn).ok_or_else(|| {
            ServiceError::new("no-such-entry", format!("no entry named {dn_src}"))
        })?;
        // Write-ahead: like TXN, the begin + modify records are durable
        // before the mutation, so a crash mid-apply leaves an
        // uncommitted tail that recovery discards.
        let tx_id = match &mut half.journal {
            Some(journal) => {
                let tx_id = journal.writer.begin_modify(id, mods);
                let pending = journal.writer.take_pending();
                append_file(&journal.path, &pending)
                    .map_err(|e| ServiceError::new("io", format!("journal begin: {e}")))?;
                Some(tx_id)
            }
            None => None,
        };
        match half.managed.modify_entry(id, mods) {
            Ok(()) => {
                if let (Some(tx_id), Some(journal)) = (tx_id, &mut half.journal) {
                    journal.writer.commit(tx_id);
                    let pending = journal.writer.take_pending();
                    if append_file(&journal.path, &pending).is_err() {
                        // Applied and legal; only durability degraded.
                        self.probe.add("server.journal_commit_io_error", 1);
                    }
                }
                let outcome = TxOutcome { ops: mods.len(), len: half.managed.len(), shards: 1 };
                self.publish(&half);
                self.probe.add("server.tx_committed", 1);
                self.commit_counter.fetch_add(1, Ordering::SeqCst);
                self.maybe_checkpoint_single(&mut half);
                Ok(outcome)
            }
            Err(e) => {
                self.probe.add_labeled("server.tx_rejected", e.code(), 1);
                Err(ServiceError::from_managed(&e))
            }
        }
    }

    /// MODIFY on the sharded backend: the router locks the single shard
    /// owning the DN, journals + applies the modification there, and the
    /// touched shard republishes its snapshot.
    fn modify_sharded(
        &self,
        backend: &ShardedBackend,
        dn: &Dn,
        mods: &[Mod],
    ) -> Result<TxOutcome, ServiceError> {
        self.probe.add("server.tx_admitted", 1);
        match backend.sharded.modify_dn(dn, mods) {
            Ok(outcome) => {
                for &k in &outcome.shards {
                    let next = Arc::new(backend.sharded.shard_instance(k));
                    *backend.snapshots[k].write().unwrap_or_else(|e| e.into_inner()) = next;
                    self.stamp_swap(k);
                    self.probe.add_labeled("server.shard_snapshot_swap", &format!("shard{k}"), 1);
                }
                self.probe.add_labeled("server.tx_route", "single", 1);
                self.probe.add("server.tx_committed", 1);
                self.commit_counter.fetch_add(1, Ordering::SeqCst);
                let shards = outcome.shards.len().max(1);
                self.maybe_checkpoint_sharded(backend);
                Ok(TxOutcome { ops: outcome.ops, len: self.len(), shards })
            }
            Err(e) => {
                let code = e.code();
                self.probe.add_labeled("server.tx_rejected", code, 1);
                Err(ServiceError { code, detail: e.to_string() })
            }
        }
    }

    /// The stable refusal every write verb gets on a read replica.
    fn read_only_refusal() -> ServiceError {
        ServiceError::new("read-only", "this server is a read replica; send writes to the primary")
    }

    /// Swaps the read snapshot to the current (post-commit) instance.
    fn publish(&self, half: &WriteHalf) {
        self.publish_through(half, &*self.probe);
    }

    /// [`publish`](DirectoryService::publish), counting the swap through
    /// the given (possibly per-request) probe.
    fn publish_through(&self, half: &WriteHalf, probe: &dyn Probe) {
        let Backend::Single(backend) = &self.backend else {
            return;
        };
        let next = Arc::new(half.managed.instance().clone());
        *backend.snapshot.write().unwrap_or_else(|e| e.into_inner()) = next;
        self.stamp_swap(0);
        probe.add("server.snapshot_swap", 1);
    }

    /// The sharded write path: the router decodes, vets (◇c ledger),
    /// journals and applies the transaction on exactly the shards its
    /// DN prefixes route to — one locked shard on the fast path, the
    /// 2-phase apply across all involved shards otherwise — then each
    /// touched shard republishes its own snapshot. Untouched shards
    /// keep serving reads and committing concurrently throughout.
    fn apply_sharded(
        &self,
        backend: &ShardedBackend,
        records: Vec<LdifRecord>,
        probe: &dyn Probe,
    ) -> Result<TxOutcome, ServiceError> {
        probe.add("server.tx_admitted", 1);
        let applied =
            scoped(probe, "service.apply_sharded", || backend.sharded.apply_ldif(records));
        match applied {
            Ok(outcome) => {
                scoped(probe, "service.publish", || {
                    for &k in &outcome.shards {
                        let next = Arc::new(backend.sharded.shard_instance(k));
                        *backend.snapshots[k].write().unwrap_or_else(|e| e.into_inner()) = next;
                        self.stamp_swap(k);
                        probe.add_labeled("server.shard_snapshot_swap", &format!("shard{k}"), 1);
                    }
                });
                probe.add_labeled(
                    "server.tx_route",
                    if outcome.shards.len() > 1 { "cross" } else { "single" },
                    1,
                );
                probe.add("server.tx_committed", 1);
                self.commit_counter.fetch_add(1, Ordering::SeqCst);
                let shards = outcome.shards.len().max(1);
                self.maybe_checkpoint_sharded(backend);
                Ok(TxOutcome { ops: outcome.ops, len: self.len(), shards })
            }
            Err(e) => {
                let code = e.code();
                probe.add_labeled("server.tx_rejected", code, 1);
                Err(ServiceError { code, detail: e.to_string() })
            }
        }
    }

    /// The probe attached to this service.
    pub fn probe(&self) -> &(dyn Probe + Send + Sync) {
        &*self.probe
    }

    /// Checkpoints now: captures the forest into `<journal>.ckpt`
    /// (atomic temp-file + rename), then truncates the journal to empty.
    /// Returns the covered seq per shard. Refused with `unsupported`
    /// when no journal is attached — without one there is nothing to
    /// compact and recovery has no file to find.
    pub fn checkpoint_now(&self) -> Result<Vec<u64>, ServiceError> {
        match &self.backend {
            Backend::Single(b) => {
                let mut half = lock_unpoisoned(&b.write);
                self.checkpoint_single(&mut half).map(|seq| vec![seq])
            }
            Backend::Sharded(b) => self.checkpoint_sharded(b),
        }
    }

    /// The single-engine checkpoint: runs entirely under the held write
    /// mutex, so capture → write → truncate admits no interleaved
    /// commit. The crash ordering (checkpoint renamed before the journal
    /// is truncated) is what makes every intermediate state recoverable.
    fn checkpoint_single(&self, half: &mut WriteHalf) -> Result<u64, ServiceError> {
        let Some(journal) = &half.journal else {
            return Err(ServiceError::new(
                "unsupported",
                "checkpointing needs a journal; start the server with --journal",
            ));
        };
        let ckpt = Checkpoint::capture(
            half.managed.instance(),
            half.managed.schema(),
            journal.writer.records_emitted(),
            journal.writer.next_tx(),
            None,
        );
        write_checkpoint(&checkpoint_path(&journal.path), &ckpt.encode(), &*self.probe)
            .map_err(|e| ServiceError::new("io", format!("writing checkpoint: {e}")))?;
        truncate_journal(&journal.path, &*self.probe)
            .map_err(|e| ServiceError::new("io", format!("truncating journal: {e}")))?;
        half.since_checkpoint = 0;
        self.probe.add("server.checkpoint", 1);
        Ok(ckpt.seq)
    }

    /// The sharded checkpoint campaign: delegates to
    /// [`ShardedDirectory::checkpoint_and_truncate`], which holds every
    /// shard lock across capture + write + truncate so no commit can
    /// slip between a shard's capture and its journal truncation.
    fn checkpoint_sharded(&self, backend: &ShardedBackend) -> Result<Vec<u64>, ServiceError> {
        let Some(base) = &backend.journal_base else {
            return Err(ServiceError::new(
                "unsupported",
                "checkpointing needs a journal; start the server with --journal",
            ));
        };
        let paths: Vec<PathBuf> =
            (0..backend.sharded.shards()).map(|k| shard_journal_path(base, k)).collect();
        let seqs = backend
            .sharded
            .checkpoint_and_truncate(&paths, &*self.probe)
            .map_err(|e| ServiceError::new("io", format!("checkpoint campaign: {e}")))?;
        backend.commits_since_checkpoint.store(0, Ordering::Relaxed);
        self.probe.add("server.checkpoint", 1);
        Ok(seqs)
    }

    /// The `--checkpoint-every` trigger on the single backend, called
    /// with the write mutex still held after a commit. A failed
    /// checkpoint surfaces through the probe, never by failing the
    /// already-committed request; the counter stays saturated so the
    /// next commit retries.
    fn maybe_checkpoint_single(&self, half: &mut WriteHalf) {
        let Some(every) = self.checkpoint_every else { return };
        if half.journal.is_none() {
            return;
        }
        half.since_checkpoint += 1;
        if half.since_checkpoint >= every {
            if let Err(e) = self.checkpoint_single(half) {
                self.probe.add_labeled("server.checkpoint_error", e.code, 1);
            }
        }
    }

    /// The `--checkpoint-every` trigger on the sharded backend. The
    /// counter is advisory (commits race on it), which at worst runs one
    /// extra campaign — idempotent, since the campaign serializes on the
    /// shard locks.
    fn maybe_checkpoint_sharded(&self, backend: &ShardedBackend) {
        let Some(every) = self.checkpoint_every else { return };
        if backend.journal_base.is_none() {
            return;
        }
        let n = backend.commits_since_checkpoint.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= every {
            if let Err(e) = self.checkpoint_sharded(backend) {
                self.probe.add_labeled("server.checkpoint_error", e.code, 1);
            }
        }
    }

    /// Serves a follower's bootstrap: captures a fresh checkpoint of the
    /// current committed state under the write lock and returns
    /// `(seq, next_tx, encoded checkpoint)`. The capture is trivially
    /// consistent with the shipped stream — no journal record past
    /// `seq` exists at capture time, so the follower's cursor starts
    /// exactly where shipping resumes.
    pub fn ship_bootstrap(&self) -> Result<(u64, u64, String), ServiceError> {
        let Backend::Single(backend) = &self.backend else {
            return Err(ServiceError::new(
                "unsupported",
                "SHIP serves single-engine primaries only",
            ));
        };
        let half = lock_unpoisoned(&backend.write);
        let Some(journal) = &half.journal else {
            return Err(ServiceError::new(
                "unsupported",
                "SHIP needs a journaled primary; start it with --journal",
            ));
        };
        let ckpt = Checkpoint::capture(
            half.managed.instance(),
            half.managed.schema(),
            journal.writer.records_emitted(),
            journal.writer.next_tx(),
            None,
        );
        self.probe.add("server.ship_bootstrap", 1);
        Ok((ckpt.seq, ckpt.next_tx, ckpt.encode()))
    }

    /// Serves a follower's tail request: returns `(next_seq, records)` —
    /// the raw journal record text from `from_seq` up to the primary's
    /// cursor. Reading happens under the write mutex (the same lock
    /// appends hold), so the file is always a consistent prefix.
    /// `ship-gap` means the requested records were already truncated
    /// into a checkpoint (or lost to a degraded-durability append): the
    /// follower must re-bootstrap.
    pub fn ship_tail(&self, from_seq: u64) -> Result<(u64, String), ServiceError> {
        let Backend::Single(backend) = &self.backend else {
            return Err(ServiceError::new(
                "unsupported",
                "SHIP serves single-engine primaries only",
            ));
        };
        let half = lock_unpoisoned(&backend.write);
        let Some(journal) = &half.journal else {
            return Err(ServiceError::new(
                "unsupported",
                "SHIP needs a journaled primary; start it with --journal",
            ));
        };
        let cursor = journal.writer.records_emitted();
        // Fault site: dying here serves nothing — the follower sees the
        // `panicked` code and retries the same cursor.
        self.probe.add(SITE_SHIP_SERVE, 1);
        if from_seq > cursor {
            return Err(ServiceError::new(
                "ship-gap",
                format!("follower asks for seq {from_seq} but the journal ends at {cursor}"),
            ));
        }
        if from_seq == cursor {
            return Ok((cursor, String::new()));
        }
        let text = match std::fs::read_to_string(&journal.path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(ServiceError::new("io", format!("reading journal: {e}"))),
        };
        let parsed = Journal::parse(&text);
        if parsed.next_seq() != cursor || parsed.start_seq > from_seq {
            return Err(ServiceError::new(
                "ship-gap",
                format!(
                    "records below seq {cursor} are no longer in the journal; re-bootstrap from \
                     a fresh checkpoint"
                ),
            ));
        }
        let tail = journal_text_from(&text[..parsed.intact_len], from_seq).ok_or_else(|| {
            ServiceError::new("ship-gap", format!("seq {from_seq} not found in the journal"))
        })?;
        Ok((cursor, tail.to_owned()))
    }

    /// Applies one committed transaction shipped from a primary, through
    /// the same legality engine client writes go through. This is the
    /// follower's only mutation path — it bypasses the `read-only` gate
    /// by construction, not by flag.
    pub fn replicate_tx(&self, jtx: &JournalTx) -> Result<(), ServiceError> {
        let Backend::Single(backend) = &self.backend else {
            return Err(ServiceError::new(
                "unsupported",
                "replication applies to the single-engine backend only",
            ));
        };
        let mut half = lock_unpoisoned(&backend.write);
        // Fault site: dying here leaves the replica's instance intact;
        // the next sync pass re-ships the same records and converges.
        self.probe.add(SITE_SHIP_APPLY, 1);
        match (&jtx.schema, &jtx.modify) {
            // A shipped schema cutover: the primary already certified
            // the instance legal under the new schema, so the follower
            // adopts it directly and bumps its own epoch.
            (Some(s), _) => s
                .engine_schema()
                .map_err(ManagedError::Recovery)
                .and_then(|schema| half.managed.set_schema(schema))
                .map(|()| {
                    self.schema_epoch.fetch_add(1, Ordering::SeqCst);
                    self.probe.add("server.schema_replicated", 1);
                }),
            (None, Some(m)) => half.managed.modify_entry(m.target, &m.mods),
            (None, None) => half.managed.apply(&jtx.to_transaction()),
        }
        .map_err(|e| {
            ServiceError::new("replication", format!("applying shipped tx {}: {e}", jtx.id))
        })?;
        self.publish(&half);
        Ok(())
    }

    /// Swaps in a freshly bootstrapped state — the follower's `ship-gap`
    /// re-bootstrap path. The previous engine's probe moves over to the
    /// new one, and the snapshot republishes immediately.
    pub fn install_follower_state(&self, managed: ManagedDirectory) -> Result<(), ServiceError> {
        let Backend::Single(backend) = &self.backend else {
            return Err(ServiceError::new(
                "unsupported",
                "replication applies to the single-engine backend only",
            ));
        };
        let mut half = lock_unpoisoned(&backend.write);
        let probe = half.managed.swap_probe(None);
        let mut managed = managed;
        managed.swap_probe(probe);
        half.managed = managed;
        self.publish(&half);
        Ok(())
    }

    /// The current full bounding-schema (with `Cr`), whatever the
    /// backend.
    pub fn current_schema(&self) -> DirectorySchema {
        match &self.backend {
            Backend::Single(b) => lock_unpoisoned(&b.write).managed.schema().clone(),
            Backend::Sharded(b) => b.sharded.schema(),
        }
    }

    /// Completed schema cutovers since this service started.
    pub fn schema_epoch(&self) -> u64 {
        self.schema_epoch.load(Ordering::Relaxed)
    }

    /// `SCHEMA PROPOSE`: parses `payload` (a list of evolution steps or
    /// a full schema-DSL document) against the current schema and
    /// stages the resulting plan. At most one proposal is staged at a
    /// time; a second is refused with `schema-pending` until the first
    /// commits or aborts.
    pub fn schema_propose(&self, payload: &str) -> Result<String, ServiceError> {
        if self.read_only {
            return Err(Self::read_only_refusal());
        }
        let mut slot = lock_unpoisoned(&self.evolution);
        if slot.is_some() {
            return Err(ServiceError::new(
                "schema-pending",
                "a schema proposal is already staged; SCHEMA COMMIT or SCHEMA ABORT it first",
            ));
        }
        let current = self.current_schema();
        let plan = parse_proposal(&current, payload).map_err(|e| match &e {
            PlanError::Inconsistent(_) => ServiceError::new("schema-inconsistent", e.to_string()),
            _ => ServiceError::new("schema-invalid", e.to_string()),
        })?;
        self.probe.add("server.schema_propose", 1);
        let body = format!(
            "{{\"staged\":true,\"description\":{},\"relaxing\":{},\"restricting\":{},\"requires_recheck\":{}}}",
            bschema_obs::json::escape(&plan.describe()),
            plan.relaxing,
            plan.restricting,
            !plan.is_relaxing_only(),
        );
        *slot = Some(StagedEvolution { plan, checked_at: None });
        Ok(body)
    }

    /// `SCHEMA CHECK`: runs the staged plan's targeted recheck (§6.2 —
    /// only the restricting steps' new elements; Definition 2.7 exempts
    /// relaxing ones) against a read snapshot, entirely off the write
    /// path. A pass records the commit counter so `SCHEMA COMMIT` can
    /// skip its under-lock recheck when nothing committed in between; a
    /// failure reports the offending entries and leaves the proposal
    /// staged for inspection or abort.
    pub fn schema_check(&self) -> Result<String, ServiceError> {
        let mut slot = lock_unpoisoned(&self.evolution);
        let Some(staged) = slot.as_mut() else {
            return Err(ServiceError::new("schema-none", "no schema proposal is staged"));
        };
        // Load the freshness token *before* the snapshot: any commit
        // after this load bumps the counter, so an unchanged counter at
        // COMMIT time proves the checked snapshot is still the live
        // instance.
        let counter = self.commit_counter.load(Ordering::SeqCst);
        self.probe.add("server.schema_check", 1);
        let report = match &self.backend {
            Backend::Single(_) => staged.plan.recheck(&self.snapshot()),
            Backend::Sharded(b) => {
                let merged = b
                    .sharded
                    .merged_instance()
                    .map_err(|e| ServiceError::new("internal", e.to_string()))?;
                staged.plan.recheck(&merged)
            }
        };
        if report.is_legal() {
            staged.checked_at = Some(counter);
            Ok(format!(
                "{{\"ok\":true,\"mode\":{},\"checked_at\":{counter}}}",
                bschema_obs::json::escape(&staged.plan.describe()),
            ))
        } else {
            staged.checked_at = None;
            let dir = match &self.backend {
                Backend::Single(_) => (*self.snapshot()).clone(),
                Backend::Sharded(b) => b
                    .sharded
                    .merged_instance()
                    .map_err(|e| ServiceError::new("internal", e.to_string()))?,
            };
            Err(ServiceError::new("schema-violates", render_violations(&report, &dir)))
        }
    }

    /// `SCHEMA STATUS`: the current epoch, schema hash, and the staged
    /// proposal (if any) as one JSON object.
    pub fn schema_status(&self) -> String {
        let slot = lock_unpoisoned(&self.evolution);
        let pending = match slot.as_ref() {
            Some(staged) => format!(
                "{{\"description\":{},\"relaxing\":{},\"restricting\":{},\"checked\":{}}}",
                bschema_obs::json::escape(&staged.plan.describe()),
                staged.plan.relaxing,
                staged.plan.restricting,
                staged.checked_at.is_some(),
            ),
            None => "null".to_owned(),
        };
        drop(slot);
        format!(
            "{{\"epoch\":{},\"hash\":\"{:016x}\",\"shards\":{},\"pending\":{pending}}}",
            self.schema_epoch(),
            schema_hash(&self.current_schema()),
            self.shards(),
        )
    }

    /// `SCHEMA ABORT`: drops the staged proposal.
    pub fn schema_abort(&self) -> Result<String, ServiceError> {
        if self.read_only {
            return Err(Self::read_only_refusal());
        }
        let mut slot = lock_unpoisoned(&self.evolution);
        if slot.take().is_none() {
            return Err(ServiceError::new("schema-none", "no schema proposal is staged"));
        }
        self.probe.add("server.schema_abort", 1);
        Ok("{\"aborted\":true}".to_owned())
    }

    /// `SCHEMA COMMIT`: the live cutover. Under the write lock (single)
    /// or every shard lock (sharded), the staged plan is revalidated —
    /// skipped entirely for relaxing-only plans (Definition 2.7), and
    /// on the single backend also when nothing committed since a passed
    /// `SCHEMA CHECK` — then the full-schema record is write-ahead
    /// journalled, the engine swaps schemas, and the commit record
    /// lands. The `schema.cutover` fault site sits between the prepare
    /// (journalled schema record) and the swap: a panic there leaves an
    /// uncommitted record that recovery discards, the old epoch intact,
    /// and the proposal still staged — a retry simply succeeds.
    pub fn schema_commit(&self) -> Result<String, ServiceError> {
        if self.read_only {
            return Err(Self::read_only_refusal());
        }
        let mut slot = lock_unpoisoned(&self.evolution);
        let Some(staged) = slot.as_ref() else {
            return Err(ServiceError::new("schema-none", "no schema proposal is staged"));
        };
        let target = staged.plan.target.clone();
        let dsl = staged.plan.dsl.clone();
        match &self.backend {
            Backend::Single(b) => {
                let mut half = lock_unpoisoned(&b.write);
                let unchanged =
                    staged.checked_at == Some(self.commit_counter.load(Ordering::SeqCst));
                if !staged.plan.is_relaxing_only() && !unchanged {
                    let report = staged.plan.recheck(half.managed.instance());
                    if !report.is_legal() {
                        let detail = render_violations(&report, half.managed.instance());
                        self.probe.add_labeled("server.tx_rejected", "schema-violates", 1);
                        return Err(ServiceError::new("schema-violates", detail));
                    }
                }
                // Write-ahead: the schema record must be durable before
                // the swap, mirroring the TXN begin/commit discipline.
                let tx_id = match &mut half.journal {
                    Some(journal) => {
                        let id = journal.writer.begin_schema(&dsl, false, None);
                        let pending = journal.writer.take_pending();
                        append_file(&journal.path, &pending)
                            .map_err(|e| ServiceError::new("io", format!("journal begin: {e}")))?;
                        Some(id)
                    }
                    None => None,
                };
                // Fault site between prepare and swap (see method docs).
                self.probe.add("schema.cutover", 1);
                half.managed.set_schema(target).map_err(|e| ServiceError::from_managed(&e))?;
                if let (Some(id), Some(journal)) = (tx_id, &mut half.journal) {
                    journal.writer.commit(id);
                    let pending = journal.writer.take_pending();
                    if append_file(&journal.path, &pending).is_err() {
                        self.probe.add("server.journal_commit_io_error", 1);
                    }
                }
                self.publish(&half);
            }
            Backend::Sharded(b) => {
                let plan = staged.plan.clone();
                let violation = std::cell::RefCell::new(None);
                let result = b.sharded.swap_schema_validated(target, &dsl, |merged| {
                    // The counter is not trusted here (sharded commits
                    // bump it outside the shard locks); restricting
                    // plans always revalidate under the locks.
                    if !plan.is_relaxing_only() {
                        let report = plan.recheck(merged);
                        if !report.is_legal() {
                            *violation.borrow_mut() = Some(render_violations(&report, merged));
                            return Err(ManagedError::IllegalInstance(report).into());
                        }
                    }
                    Ok(())
                });
                if let Some(detail) = violation.into_inner() {
                    self.probe.add_labeled("server.tx_rejected", "schema-violates", 1);
                    return Err(ServiceError::new("schema-violates", detail));
                }
                result.map_err(|e| ServiceError { code: e.code(), detail: e.to_string() })?;
            }
        }
        let epoch = self.schema_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        *slot = None;
        self.probe.add("server.schema_commit", 1);
        Ok(format!(
            "{{\"committed\":true,\"epoch\":{epoch},\"hash\":\"{:016x}\"}}",
            schema_hash(&self.current_schema()),
        ))
    }

    /// The cumulative registry in Prometheus-style text exposition
    /// (`# TYPE` lines, `bschema_`-prefixed sanitised names, summary
    /// quantiles). `None` when no recorder is attached.
    pub fn metrics_prom(&self) -> Option<String> {
        self.recorder.as_ref().map(|r| r.metrics().render_prom())
    }

    /// Stamps shard `k`'s snapshot-swap clock (µs since `origin`).
    fn stamp_swap(&self, k: usize) {
        if let Some(slot) = self.last_swap_us.get(k) {
            slot.store(self.uptime_us(), Ordering::Relaxed);
        }
    }

    /// Shard `k`'s journal growth `(records, bytes)` — zeros when the
    /// server runs without a journal.
    fn shard_journal_stats(&self, k: usize) -> (u64, u64) {
        match &self.backend {
            Backend::Single(b) => {
                let half = lock_unpoisoned(&b.write);
                half.journal
                    .as_ref()
                    .map_or((0, 0), |j| (j.writer.records_emitted(), j.writer.bytes_emitted()))
            }
            Backend::Sharded(b) => b.sharded.journal_stats(k),
        }
    }

    /// The merged activity of the monitor window:
    /// `(window, span_us, requests, p99_us, err_rate)`.
    fn window_stats(&self, monitor: &Monitor) -> (MetricsSnapshot, u64, u64, u64, f64) {
        let (window, span_us) = monitor.ring().window(monitor.config().window);
        let all = window.histograms.get("server.request_micros").copied().unwrap_or_default();
        let requests = all.count();
        let p99_us = all.quantile(0.99);
        let errors: u64 = window
            .histograms
            .iter()
            .filter(|(key, _)| key.starts_with("server.rejected_us."))
            .map(|(_, h)| h.count())
            .sum();
        let err_rate = if requests == 0 { 0.0 } else { (errors as f64 / requests as f64).min(1.0) };
        (window, span_us, requests, p99_us, err_rate)
    }

    /// One sampler tick: snapshot the registry into the retention ring,
    /// evaluate the SLO burn rate over the window (raising/clearing the
    /// edge-triggered alert), and publish the tick frame to `WATCH`
    /// sessions. Returns the published frame; `None` without a monitor.
    pub fn monitor_tick(&self) -> Option<String> {
        let monitor = self.monitor.as_ref()?;
        let cumulative = self.recorder.as_ref().map(|r| r.metrics().snapshot()).unwrap_or_default();
        let at_us = self.uptime_us();
        let point = monitor.ring().record(cumulative, at_us);
        let mut burn = 0.0;
        if let Some(slo) = monitor.config().slo {
            let (_, _, requests, p99_us, err_rate) = self.window_stats(monitor);
            burn = slo.burn(p99_us, err_rate, requests);
            if let Some(edge) = monitor.observe_burn(burn) {
                self.record_slo_edge(monitor, edge, burn, p99_us, err_rate, at_us);
            }
        }
        // Splice the SLO state into the tick frame ahead of the point's
        // own fields (`{"tick":...}` → `{"burn":...,"tick":...}`).
        let body = point.to_json();
        let json = format!(
            "{{\"burn\":{},\"alerts\":{},{}",
            fmt_rate(burn),
            monitor.alerts_fired(),
            &body[1..]
        );
        monitor.publish_tick(point.seq, json.clone());
        Some(json)
    }

    /// Raises or clears the SLO burn alert: a counter edge on the probe,
    /// a synthetic `monitor.slo_burn` record in the flight recorder (so
    /// `TRACE` shows the alert next to the requests that caused it), and
    /// a structured `AUDIT` line appended to the audit trail.
    fn record_slo_edge(
        &self,
        monitor: &Monitor,
        edge: AlertEdge,
        burn: f64,
        p99_us: u64,
        err_rate: f64,
        at_us: u64,
    ) {
        let event = match edge {
            AlertEdge::Fired => "slo-burn",
            AlertEdge::Cleared => "slo-clear",
        };
        match edge {
            AlertEdge::Fired => self.probe.add("server.slo_burn_alert", 1),
            AlertEdge::Cleared => self.probe.add("server.slo_burn_cleared", 1),
        }
        if matches!(edge, AlertEdge::Fired) {
            if let Some(flight) = &self.flight {
                let root = SpanNode {
                    name: "monitor.slo_burn",
                    ord: 0,
                    start_us: at_us,
                    dur_us: Some(0),
                    children: Vec::new(),
                };
                flight.record("monitor", "ALERT", event, 0, root);
            }
        }
        if let Some(path) = &monitor.config().audit_path {
            let slo = monitor.config().slo.map_or("null".to_owned(), |s| s.to_json());
            let detail = format!(
                "{{\"event\":{},\"burn\":{},\"p99_us\":{p99_us},\"err_rate\":{},\"slo\":{slo}}}",
                bschema_obs::json::escape(event),
                fmt_rate(burn),
                fmt_rate(err_rate),
            );
            let _ = append_file(path, &format!("AUDIT {at_us} {event} {detail}\n"));
        }
    }

    /// The `HEALTH` verdict: global and per-shard signals judged against
    /// thresholds, plus the fitness gauge, window stats, SLO state and
    /// `◇c` ledger — one JSON object. `None` without a monitor.
    pub fn health_json(&self) -> Option<String> {
        let monitor = self.monitor.as_ref()?;
        let cfg = monitor.config();
        let (window, span_us, requests, p99_us, err_rate) = self.window_stats(monitor);
        let now_us = self.uptime_us();
        let req_per_s = if span_us == 0 { 0.0 } else { requests as f64 / (span_us as f64 / 1e6) };

        let mut report = HealthReport::default();

        // Global signals. Latency/error thresholds derive from the SLO
        // when one is set (warn at the target, crit well past it).
        let (p99_warn, p99_crit) = match cfg.slo.and_then(|s| s.p99_us) {
            Some(target) => (target as f64, 2.0 * target as f64),
            None => (100_000.0, 1_000_000.0),
        };
        report.global.push(Signal::high_bad("request_p99_us", p99_us as f64, p99_warn, p99_crit));
        let (err_warn, err_crit) = match cfg.slo.and_then(|s| s.err_rate) {
            Some(budget) => (budget, (budget * 10.0).min(1.0)),
            None => (0.01, 0.1),
        };
        report.global.push(Signal::high_bad("err_rate", err_rate, err_warn, err_crit));
        let qmax = window.histograms.get("server.queue_depth").map_or(0, |h| h.max());
        report.global.push(Signal::high_bad("queue_depth_max", qmax as f64, 32.0, 64.0));
        let rollbacks = window.counters.get("sharded.rollback").copied().unwrap_or(0);
        let prepared = window.counters.get("sharded.prepared").copied().unwrap_or(0);
        let rollback_rate = if prepared + rollbacks == 0 {
            0.0
        } else {
            rollbacks as f64 / (prepared + rollbacks) as f64
        };
        report.global.push(Signal::high_bad("rollback_rate", rollback_rate, 0.05, 0.25));
        let mut burn = 0.0;
        if let Some(slo) = cfg.slo {
            burn = slo.burn(p99_us, err_rate, requests);
            report.global.push(Signal::high_bad("slo_burn", burn, 0.5, 1.0));
        }
        // Informational: cutovers this run. The thresholds are set far
        // beyond reach — the signal exists so dashboards see the epoch
        // move, not to alert on it.
        report.global.push(Signal::high_bad(
            "schema_epoch",
            self.schema_epoch() as f64,
            1e12,
            1e14,
        ));
        let ledger = match &self.backend {
            Backend::Sharded(b) => Some(b.sharded.ledger()),
            Backend::Single(_) => None,
        };
        if let Some(counts) = &ledger {
            if !counts.is_empty() {
                let min = counts.values().copied().min().unwrap_or(0);
                report.global.push(Signal::low_bad("ledger_min", min as f64, 1.0, 0.0));
            }
        }
        if let Some(rep) = &self.replication {
            report.global.push(Signal::high_bad(
                "replication_lag_records",
                rep.lag() as f64,
                1_000.0,
                100_000.0,
            ));
            let ship_age_s = now_us.saturating_sub(rep.last_ship_us()) as f64 / 1e6;
            report.global.push(Signal::high_bad("ship_age_s", ship_age_s, 10.0, 120.0));
        }

        // Per-shard signal groups — the same pinned signal set whatever
        // the backend, so `HEALTH` consumers need no shape switch.
        for k in 0..self.shards() {
            let (records, bytes) = self.shard_journal_stats(k);
            let entries = self.shard_snapshot(k).len();
            let swap = self.last_swap_us[k].load(Ordering::Relaxed);
            let age_s = now_us.saturating_sub(swap) as f64 / 1e6;
            let prepares =
                window.counters.get(&format!("sharded.prepare.shard{k}")).copied().unwrap_or(0);
            let commits =
                window.counters.get(&format!("sharded.commit.shard{k}")).copied().unwrap_or(0);
            report.shards.push(ShardHealth {
                shard: k,
                signals: vec![
                    Signal::high_bad("entries", entries as f64, 1e6, 1e7),
                    Signal::high_bad("journal_records", records as f64, 1e5, 1e6),
                    Signal::high_bad("journal_bytes", bytes as f64, 64e6, 512e6),
                    Signal::high_bad("snapshot_age_s", age_s, 3600.0, 86400.0),
                    Signal::high_bad("prepares", prepares as f64, 1e12, 1e14),
                    Signal::high_bad("commits", commits as f64, 1e12, 1e14),
                ],
            });
        }

        report.sections.push(("shards_total".to_owned(), self.shards().to_string()));
        report.sections.push(("ticks".to_owned(), monitor.ring().ticks().to_string()));
        report.sections.push((
            "window".to_owned(),
            format!(
                "{{\"requests\":{requests},\"req_per_s\":{},\"p99_us\":{p99_us},\"err_rate\":{},\"span_us\":{span_us}}}",
                fmt_rate(req_per_s),
                fmt_rate(err_rate),
            ),
        ));
        let slo_json = match cfg.slo {
            Some(slo) => format!(
                "{{\"policy\":{},\"burn\":{},\"burning\":{},\"alerts\":{}}}",
                slo.to_json(),
                fmt_rate(burn),
                monitor.is_burning(),
                monitor.alerts_fired(),
            ),
            None => "null".to_owned(),
        };
        report.sections.push(("slo".to_owned(), slo_json));
        report.sections.push(("fitness".to_owned(), fitness_json(&window)));
        let ledger_json = match &ledger {
            Some(counts) => {
                let min = counts.values().copied().min().unwrap_or(0);
                let body: Vec<String> = counts
                    .iter()
                    .map(|(class, n)| format!("{}:{n}", bschema_obs::json::escape(class)))
                    .collect();
                format!("{{\"min\":{min},\"classes\":{{{}}}}}", body.join(","))
            }
            None => "null".to_owned(),
        };
        report.sections.push(("ledger".to_owned(), ledger_json));
        let pending = lock_unpoisoned(&self.evolution).is_some();
        report.sections.push((
            "schema".to_owned(),
            format!(
                "{{\"epoch\":{},\"hash\":\"{:016x}\",\"pending\":{pending}}}",
                self.schema_epoch(),
                schema_hash(&self.current_schema()),
            ),
        ));
        let replication_json = match &self.replication {
            Some(rep) => format!(
                "{{\"applied_seq\":{},\"source_seq\":{},\"lag\":{},\"bootstraps\":{},\"errors\":{}}}",
                rep.applied_seq(),
                rep.source_seq(),
                rep.lag(),
                rep.bootstraps(),
                rep.errors(),
            ),
            None => "null".to_owned(),
        };
        report.sections.push(("replication".to_owned(), replication_json));
        Some(report.to_json())
    }
}

/// Renders a recheck failure as an EXPLAIN-style report naming the
/// offending entries by DN (first few, with a count of the rest).
fn render_violations(report: &LegalityReport, dir: &DirectoryInstance) -> String {
    let total = report.len();
    let mut parts: Vec<String> = Vec::new();
    for v in report.violations().iter().take(5) {
        match v.entry().and_then(|id| dir.dn(id).ok()) {
            Some(dn) => parts.push(format!("{v} (dn: {dn})")),
            None => parts.push(v.to_string()),
        }
    }
    let more = if total > parts.len() {
        format!("; +{} more", total - parts.len())
    } else {
        String::new()
    };
    format!("{total} violation(s) under the proposed schema: {}{more}", parts.join("; "))
}

/// The schema-fitness gauge over the window: commits vs rejections
/// attributed per stable rejection code (the §3 legality verdicts the
/// Figure 4 structure rules produce) and the Figure 5 Δ-query volume
/// per rule.
fn fitness_json(window: &MetricsSnapshot) -> String {
    let committed = window.counters.get("server.tx_committed").copied().unwrap_or(0);
    let mut rejected = Vec::new();
    let mut rejected_total = 0u64;
    let mut delta = Vec::new();
    for (key, &n) in &window.counters {
        if let Some(code) = key.strip_prefix("server.tx_rejected.") {
            rejected.push(format!("{}:{n}", bschema_obs::json::escape(code)));
            rejected_total += n;
        } else if let Some(rule) = key.strip_prefix("incremental.delta_query.") {
            delta.push(format!("{}:{n}", bschema_obs::json::escape(rule)));
        }
    }
    let legal_rate = if committed + rejected_total == 0 {
        1.0
    } else {
        committed as f64 / (committed + rejected_total) as f64
    };
    format!(
        "{{\"committed\":{committed},\"rejected\":{{{}}},\"legal_rate\":{},\"delta_queries\":{{{}}}}}",
        rejected.join(","),
        fmt_rate(legal_rate),
        delta.join(","),
    )
}

/// Renders a rate/burn as finite JSON (a zero error budget burns to ∞,
/// which JSON cannot carry).
fn fmt_rate(v: f64) -> String {
    if !v.is_finite() {
        return "1e308".to_owned();
    }
    format!("{v:.6}")
}

/// Runs `f` inside a span named `name`, opened at the probe's root
/// level (a [`RequestTrace`] re-parents it under the request root; the
/// shared recorder keeps it as a top-level span). Service stages report
/// failure through return values, not panics, so the span always closes.
fn scoped<T>(probe: &dyn Probe, name: &'static str, f: impl FnOnce() -> T) -> T {
    let span = probe.span_start(NO_SPAN, name, 0);
    let out = f();
    probe.span_end(span);
    out
}

/// Reads a journal file, repairing a torn tail (crash mid-write) in
/// place so the surviving prefix reparses cleanly. A missing file is an
/// empty journal.
fn read_repaired_journal(path: &std::path::Path) -> Result<Journal, ServiceError> {
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let journal = Journal::parse(&text);
            if journal.truncated || journal.dropped_records > 0 {
                std::fs::write(path, &text[..journal.intact_len])
                    .map_err(|e| ServiceError::new("io", format!("repairing journal: {e}")))?;
            }
            Ok(journal)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Journal::empty()),
        Err(e) => Err(ServiceError::new("io", format!("reading journal: {e}"))),
    }
}

/// Reads a file that may legitimately not exist (checkpoints before the
/// first campaign).
fn read_optional(path: &std::path::Path) -> Result<Option<String>, ServiceError> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(ServiceError::new("io", format!("reading {}: {e}", path.display()))),
    }
}

/// The suffix of `intact` (repaired journal record text) starting at
/// the record with sequence `from_seq`, or `None` when that record is
/// not present. Record DNs are the first line of each LDIF paragraph,
/// so the needle is anchored to a line start.
fn journal_text_from(intact: &str, from_seq: u64) -> Option<&str> {
    let needle = format!("dn: op={from_seq},");
    if intact.starts_with(&needle) {
        return Some(intact);
    }
    let mut search = 0;
    while let Some(pos) = intact[search..].find(&needle) {
        let at = search + pos;
        if intact.as_bytes()[at - 1] == b'\n' {
            return Some(&intact[at..]);
        }
        search = at + needle.len();
    }
    None
}

fn append_file(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    if text.is_empty() {
        return Ok(());
    }
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(text.as_bytes())?;
    f.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bschema_core::paper::{white_pages_instance, white_pages_schema};

    fn service() -> DirectoryService {
        let (dir, _) = white_pages_instance();
        let managed = ManagedDirectory::with_instance(white_pages_schema(), dir).unwrap();
        DirectoryService::new(managed)
    }

    #[test]
    fn search_runs_on_snapshot() {
        let svc = service();
        let (n, ldif) =
            svc.search(None, SearchScope::Subtree, "(objectClass=person)", None).unwrap();
        assert_eq!(n, 3);
        assert_eq!(ldif.matches("dn: ").count(), 3);
        // Base-scoped search.
        let (n, _) = svc
            .search(Some("ou=attLabs,o=att"), SearchScope::OneLevel, "(objectClass=*)", None)
            .unwrap();
        assert_eq!(n, 2, "armstrong + databases");
    }

    #[test]
    fn legal_tx_commits_and_swaps_snapshot() {
        let svc = service();
        let before = svc.snapshot();
        let outcome = svc
            .apply_ldif_tx(
                "dn: uid=pat,ou=attLabs,o=att\nobjectClass: staffMember\nobjectClass: person\nobjectClass: top\nuid: pat\nname: pat\n",
            )
            .unwrap();
        assert_eq!(outcome.len, 7);
        assert_eq!(before.len(), 6, "old snapshot still intact for holders");
        assert_eq!(svc.snapshot().len(), 7);
    }

    #[test]
    fn illegal_tx_is_rejected_byte_identically() {
        let svc = service();
        let before = svc.snapshot().canonical_bytes();
        // A person under a person violates the white-pages schema.
        let err = svc
            .apply_ldif_tx(
                "dn: uid=x,uid=suciu,ou=databases,ou=attLabs,o=att\nobjectClass: staffMember\nobjectClass: person\nobjectClass: top\nuid: x\nname: x\n",
            )
            .unwrap_err();
        assert_eq!(err.code, "rolled-back");
        assert_eq!(svc.snapshot().canonical_bytes(), before);
    }

    #[test]
    fn limits_gate_untrusted_bytes() {
        let svc = service().with_limits(ServiceLimits {
            ldif: LdifLimits { max_records: 1, ..LdifLimits::strict() },
            filter_depth: 2,
            wire: WireLimits::default(),
        });
        let two = "dn: o=a\nobjectClass: top\n\ndn: o=b\nobjectClass: top\n";
        assert_eq!(svc.apply_ldif_tx(two).unwrap_err().code, "bad-ldif");
        let deep = "(&(a=1)(|(b=2)(c=3)))";
        assert_eq!(
            svc.search(None, SearchScope::Subtree, deep, None).unwrap_err().code,
            "bad-filter"
        );
    }

    fn person_ldif(uid: &str, org: &str) -> String {
        format!(
            "dn: uid={uid},o={org}\nobjectClass: person\nobjectClass: top\nuid: {uid}\nname: {uid}\n"
        )
    }

    /// Two org names from the generated `org0..org3` roots that the
    /// router places on distinct shards.
    fn orgs_on_distinct_shards(shards: usize) -> (String, String) {
        let shard_of = |name: &str| {
            bschema_core::sharded::shard_of_root_rdn(
                &bschema_directory::Rdn::single("o", name),
                shards,
            )
        };
        let a = "org0".to_owned();
        let b = (1..4)
            .map(|i| format!("org{i}"))
            .find(|name| shard_of(name) != shard_of(&a))
            .expect("four roots cannot all collide");
        (a, b)
    }

    #[test]
    fn sharded_service_routes_commits_and_fans_out_searches() {
        let base = bschema_workload::multi_org_base(4, 12, 7);
        let svc = DirectoryService::new_sharded(white_pages_schema(), base, 4).unwrap();
        assert_eq!(svc.shards(), 4);
        let persons_before =
            svc.search(None, SearchScope::Subtree, "(objectClass=person)", None).unwrap().0;
        let (a, b) = orgs_on_distinct_shards(4);

        let single = svc.apply_ldif_tx(&person_ldif("svc1", &a)).unwrap();
        assert_eq!(single.shards, 1, "one root RDN must route to one shard");

        let cross = svc
            .apply_ldif_tx(&format!("{}\n{}", person_ldif("svc2", &a), person_ldif("svc3", &b)))
            .unwrap();
        assert_eq!(cross.shards, 2, "two roots on distinct shards must take the 2-phase path");

        // Fan-out search sees every shard's published snapshot.
        let (n, ldif) =
            svc.search(None, SearchScope::Subtree, "(objectClass=person)", None).unwrap();
        assert_eq!(n, persons_before + 3);
        for uid in ["svc1", "svc2", "svc3"] {
            assert!(ldif.contains(&format!("uid: {uid}")), "{uid} missing from fan-out");
        }
        // Base-scoped search stays on the owning shard.
        let (n, _) = svc
            .search(Some(&format!("o={a}")), SearchScope::Subtree, "(objectClass=person)", None)
            .unwrap();
        assert!(n >= 2, "org {a} holds at least svc1 + svc2");
        // A rejected transaction leaves every snapshot untouched.
        let before = svc.snapshot().canonical_bytes();
        let err = svc
            .apply_ldif_tx(&format!(
                "dn: uid=bad,o={b}\nobjectClass: person\nobjectClass: top\nuid: bad\n"
            ))
            .unwrap_err();
        assert_eq!(err.code, "rolled-back");
        assert_eq!(svc.snapshot().canonical_bytes(), before);
    }

    #[test]
    fn sharded_journal_replays_across_restart() {
        let journal_base = std::env::temp_dir()
            .join(format!("bschema-svc-sharded-journal-{}", std::process::id()));
        for k in 0..3 {
            let _ = std::fs::remove_file(shard_journal_path(&journal_base, k));
        }
        let base = bschema_workload::multi_org_base(4, 8, 11);
        let (a, b) = orgs_on_distinct_shards(3);

        let (svc, replayed) = DirectoryService::new_sharded(white_pages_schema(), base.clone(), 3)
            .unwrap()
            .with_journal(&journal_base)
            .unwrap();
        assert_eq!(replayed, 0);
        svc.apply_ldif_tx(&person_ldif("dur1", &a)).unwrap();
        let cross = svc
            .apply_ldif_tx(&format!("{}\n{}", person_ldif("dur2", &a), person_ldif("dur3", &b)))
            .unwrap();
        assert_eq!(cross.shards, 2);
        let final_bytes = svc.snapshot().canonical_bytes();
        drop(svc);

        // "Restart": same base, same journal family.
        let (svc, replayed) = DirectoryService::new_sharded(white_pages_schema(), base, 3)
            .unwrap()
            .with_journal(&journal_base)
            .unwrap();
        // The single-shard tx replays once; the cross-shard tx replays
        // on each of its two shards.
        assert_eq!(replayed, 3);
        assert_eq!(svc.snapshot().canonical_bytes(), final_bytes);
        for k in 0..3 {
            let _ = std::fs::remove_file(shard_journal_path(&journal_base, k));
        }
    }

    #[test]
    fn modify_roundtrip_without_journal() {
        let svc = service();
        let dn = "uid=suciu,ou=databases,ou=attLabs,o=att";
        svc.modify(dn, &[Mod::Add { attribute: "telephoneNumber".into(), value: "+1 973".into() }])
            .unwrap();
        let (n, ldif) =
            svc.search(Some(dn), SearchScope::Base, "(telephoneNumber=*)", None).unwrap();
        assert_eq!(n, 1);
        // Attribute names are stored lowercased.
        assert!(ldif.contains("telephonenumber: +1 973"), "{ldif}");
    }

    #[test]
    fn modify_is_journaled_and_replays_across_restart() {
        let path =
            std::env::temp_dir().join(format!("bschema-svc-modify-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(bschema_core::checkpoint::checkpoint_path(&path));

        let (svc, _) = service().with_journal(&path).unwrap();
        svc.apply_ldif_tx(
            "dn: uid=pat,ou=attLabs,o=att\nobjectClass: staffMember\nobjectClass: person\nobjectClass: top\nuid: pat\nname: pat\n",
        )
        .unwrap();
        let dn = "uid=pat,ou=attLabs,o=att";
        svc.modify(dn, &[Mod::Add { attribute: "telephoneNumber".into(), value: "+1 201".into() }])
            .unwrap();
        // A rejected modify must not replay: the begin records stay in
        // the journal as an uncommitted (discarded) tail.
        let err = svc.modify(dn, &[Mod::DeleteAttribute { attribute: "name".into() }]).unwrap_err();
        assert_eq!(err.code, "rolled-back", "dropping a required attribute must reject");
        let final_bytes = svc.snapshot().canonical_bytes();
        drop(svc);

        let (svc, replayed) = service().with_journal(&path).unwrap();
        assert_eq!(replayed, 2, "one TXN + one committed MODIFY replay");
        assert_eq!(svc.snapshot().canonical_bytes(), final_bytes);
        let (n, _) = svc.search(Some(dn), SearchScope::Base, "(telephoneNumber=*)", None).unwrap();
        assert_eq!(n, 1, "replayed modify must be visible");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_modify_routes_to_owning_shard() {
        let base = bschema_workload::multi_org_base(4, 10, 3);
        let svc = DirectoryService::new_sharded(white_pages_schema(), base, 3).unwrap();
        let (org, _) = orgs_on_distinct_shards(3);
        svc.apply_ldif_tx(&person_ldif("modme", &org)).unwrap();
        let dn = format!("uid=modme,o={org}");
        let outcome = svc
            .modify(
                &dn,
                &[Mod::Add { attribute: "telephoneNumber".into(), value: "+1 973".into() }],
            )
            .unwrap();
        assert_eq!(outcome.shards, 1, "MODIFY never crosses a subtree boundary");
        let (n, ldif) =
            svc.search(Some(&dn), SearchScope::Base, "(telephoneNumber=*)", None).unwrap();
        assert_eq!(n, 1, "republished shard snapshot must show the modification");
        assert!(ldif.contains("telephonenumber: +1 973"), "{ldif}");
        let err =
            svc.modify("uid=ghost,o=org0", &[Mod::DeleteAttribute { attribute: "name".into() }]);
        assert_eq!(err.unwrap_err().code, "no-such-entry");
    }

    #[test]
    fn checkpoint_every_compacts_the_journal() {
        let path = std::env::temp_dir()
            .join(format!("bschema-svc-ckpt-every-{}.journal", std::process::id()));
        let ckpt = bschema_core::checkpoint::checkpoint_path(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);

        let (svc, _) = service().with_journal(&path).unwrap();
        let svc = svc.with_checkpoint_every(2);
        let person = |uid: &str| {
            format!(
                "dn: uid={uid},ou=attLabs,o=att\nobjectClass: staffMember\nobjectClass: person\nobjectClass: top\nuid: {uid}\nname: {uid}\n"
            )
        };
        svc.apply_ldif_tx(&person("a1")).unwrap();
        assert!(!ckpt.exists(), "one commit must not checkpoint yet");
        svc.apply_ldif_tx(&person("a2")).unwrap();
        assert!(ckpt.exists(), "second commit trips --checkpoint-every 2");
        assert_eq!(std::fs::read_to_string(&path).unwrap_or_default(), "", "journal truncated");
        svc.apply_ldif_tx(&person("a3")).unwrap();
        let final_bytes = svc.snapshot().canonical_bytes();
        drop(svc);

        let (svc, replayed) = service().with_journal(&path).unwrap();
        assert_eq!(replayed, 1, "only the post-checkpoint tail replays");
        assert_eq!(svc.snapshot().canonical_bytes(), final_bytes);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&ckpt);
    }
}
