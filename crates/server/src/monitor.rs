//! The monitor plane: periodic sampling state shared between the
//! sampler thread and the `WATCH`/`HEALTH` verbs.
//!
//! A server started with `--monitor-interval` spawns one sampler thread
//! (`bschema-monitor`) that calls
//! [`DirectoryService::monitor_tick`](crate::service::DirectoryService::monitor_tick)
//! on each tick. The tick snapshots the metrics registry into the
//! bounded [`TimeSeries`] ring, evaluates the SLO burn rate over the
//! retained window, and publishes the tick's JSON here. `WATCH`
//! sessions block on [`Monitor::wait_for_tick`] and stream each
//! published frame; `HEALTH` reads the merged window. Everything is
//! bounded: the ring holds a fixed tick count, and a watcher that
//! cannot keep up is cut by the socket write timeout, never buffered
//! without limit.

use std::path::PathBuf;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use bschema_obs::{AlertEdge, AlertState, SloPolicy, TimeSeries};

/// Tuning for the monitor plane.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Time between sampler ticks.
    pub interval: Duration,
    /// Ticks retained in the ring.
    pub capacity: usize,
    /// Ticks merged into the `HEALTH`/SLO evaluation window.
    pub window: usize,
    /// The service-level objective burn rates are computed against.
    pub slo: Option<SloPolicy>,
    /// File the structured `AUDIT` lines (SLO alerts) are appended to.
    pub audit_path: Option<PathBuf>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval: Duration::from_secs(1),
            capacity: 120,
            window: 12,
            slo: None,
            audit_path: None,
        }
    }
}

/// The latest published tick, shared with blocked watchers.
#[derive(Debug, Default)]
struct Latest {
    seq: u64,
    json: String,
}

/// Shared monitor state: the retention ring, the latest published tick
/// (with a condvar watchers block on), and the SLO alert latch.
#[derive(Debug)]
pub struct Monitor {
    config: MonitorConfig,
    ring: TimeSeries,
    latest: Mutex<Latest>,
    tick_ready: Condvar,
    alert: Mutex<AlertState>,
}

impl Monitor {
    /// A monitor with the given tuning.
    pub fn new(config: MonitorConfig) -> Self {
        let ring = TimeSeries::new(config.capacity);
        Monitor {
            config,
            ring,
            latest: Mutex::new(Latest::default()),
            tick_ready: Condvar::new(),
            alert: Mutex::new(AlertState::new()),
        }
    }

    /// The tuning this monitor runs with.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The retention ring of per-tick metric deltas.
    pub fn ring(&self) -> &TimeSeries {
        &self.ring
    }

    /// Publishes a completed tick's frame and wakes every watcher.
    pub fn publish_tick(&self, seq: u64, json: String) {
        let mut latest = self.latest.lock().unwrap_or_else(|e| e.into_inner());
        latest.seq = seq;
        latest.json = json;
        self.tick_ready.notify_all();
    }

    /// The sequence number of the latest published tick (0 before the
    /// first).
    pub fn latest_seq(&self) -> u64 {
        self.latest.lock().unwrap_or_else(|e| e.into_inner()).seq
    }

    /// Blocks until a tick newer than `after_seq` is published or
    /// `timeout` elapses. Returns the fresh tick, or `None` on timeout
    /// (callers re-check shutdown and loop).
    pub fn wait_for_tick(&self, after_seq: u64, timeout: Duration) -> Option<(u64, String)> {
        let guard = self.latest.lock().unwrap_or_else(|e| e.into_inner());
        let (latest, _timed_out) = self
            .tick_ready
            .wait_timeout_while(guard, timeout, |latest| latest.seq <= after_seq)
            .unwrap_or_else(|e| e.into_inner());
        if latest.seq > after_seq {
            Some((latest.seq, latest.json.clone()))
        } else {
            None
        }
    }

    /// Feeds one window's burn rate through the edge-triggered alert
    /// latch.
    pub fn observe_burn(&self, burn: f64) -> Option<AlertEdge> {
        self.alert.lock().unwrap_or_else(|e| e.into_inner()).observe(burn)
    }

    /// Whether the error budget is currently burning (latched).
    pub fn is_burning(&self) -> bool {
        self.alert.lock().unwrap_or_else(|e| e.into_inner()).is_burning()
    }

    /// Total SLO alerts fired over this monitor's lifetime.
    pub fn alerts_fired(&self) -> u64 {
        self.alert.lock().unwrap_or_else(|e| e.into_inner()).fired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn watchers_see_only_fresh_ticks() {
        let m = Monitor::new(MonitorConfig::default());
        assert_eq!(m.latest_seq(), 0);
        // Nothing published yet: a short wait times out empty.
        assert_eq!(m.wait_for_tick(0, Duration::from_millis(10)), None);
        m.publish_tick(1, "{\"tick\":1}".to_owned());
        let (seq, json) = m.wait_for_tick(0, Duration::from_millis(10)).unwrap();
        assert_eq!((seq, json.as_str()), (1, "{\"tick\":1}"));
        // Already seen: waits for the next one.
        assert_eq!(m.wait_for_tick(1, Duration::from_millis(10)), None);
    }

    #[test]
    fn publish_wakes_a_blocked_watcher() {
        let m = Arc::new(Monitor::new(MonitorConfig::default()));
        let watcher = {
            let m = m.clone();
            std::thread::spawn(move || m.wait_for_tick(0, Duration::from_secs(5)))
        };
        // Give the watcher a moment to block, then publish.
        std::thread::sleep(Duration::from_millis(20));
        m.publish_tick(7, "{}".to_owned());
        let got = watcher.join().unwrap();
        assert_eq!(got, Some((7, "{}".to_owned())));
    }

    #[test]
    fn alert_latch_is_shared_and_edge_triggered() {
        let m = Monitor::new(MonitorConfig::default());
        assert_eq!(m.observe_burn(0.5), None);
        assert_eq!(m.observe_burn(1.5), Some(AlertEdge::Fired));
        assert_eq!(m.observe_burn(9.0), None);
        assert!(m.is_burning());
        assert_eq!(m.observe_burn(0.1), Some(AlertEdge::Cleared));
        assert_eq!(m.alerts_fired(), 1);
    }
}
