//! The wire framing: a line-oriented, length-prefixed-payload protocol.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! TOKEN TOKEN ... [#<payload-len>]\n
//! <payload-len bytes of payload>
//! ```
//!
//! The header is a single `\n`-terminated line of space-separated ASCII
//! tokens. If the last token is `#<n>` (a `#` followed by a decimal byte
//! count), exactly `n` bytes of opaque payload follow the newline. This
//! keeps anything that could contain spaces, newlines, or arbitrary bytes
//! — DNs, filters, LDIF — out of the header, so the header needs no
//! escaping at all, the same reasoning that leads LDAP proper to BER
//! length-prefixed values. Headers and payloads are bounded by
//! [`WireLimits`]; a peer that exceeds them is cut off mid-read rather
//! than buffered.
//!
//! Requests put a verb in token 0 (`SEARCH`, `TXN`, …); responses put
//! `OK` or `ERR` there (see [`crate::server`] for the verb table).

use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Resource bounds applied to every frame read from a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLimits {
    /// Maximum header line length in bytes, newline included.
    pub max_header_len: usize,
    /// Maximum payload length in bytes.
    pub max_payload_len: usize,
}

impl Default for WireLimits {
    fn default() -> Self {
        // The payload bound matches `LdifLimits::strict().max_input_len`:
        // the largest LDIF body the parser behind the socket will accept
        // anyway.
        WireLimits { max_header_len: 4 << 10, max_payload_len: 8 << 20 }
    }
}

/// A decoded frame: header tokens plus (possibly empty) payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The header tokens, `#<n>` length marker stripped.
    pub tokens: Vec<String>,
    /// The payload bytes (empty when the header had no length marker).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Token 0 — the request verb or response status.
    pub fn verb(&self) -> &str {
        self.tokens.first().map(String::as_str).unwrap_or("")
    }

    /// Token `i`, if present.
    pub fn arg(&self, i: usize) -> Option<&str> {
        self.tokens.get(i).map(String::as_str)
    }

    /// The payload decoded as UTF-8.
    pub fn payload_str(&self) -> Result<&str, WireError> {
        std::str::from_utf8(&self.payload)
            .map_err(|_| WireError::Malformed("payload is not UTF-8".to_owned()))
    }

    /// Extracts and removes the request's trace-context token
    /// (`tc=<trace-id>.<parent-span>`), if the header carries one. The
    /// token rides as an ordinary header token on any verb; removing it
    /// keeps positional [`arg`](Frame::arg) indices stable, and servers
    /// that predate it simply never match a positional argument against
    /// it. Tokens that merely look similar are left in place.
    pub fn take_trace_context(&mut self) -> Option<bschema_obs::TraceContext> {
        let at =
            self.tokens.iter().position(|t| bschema_obs::TraceContext::parse_token(t).is_some())?;
        bschema_obs::TraceContext::parse_token(&self.tokens.remove(at))
    }
}

/// A frame that could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer closed the connection mid-frame.
    Truncated,
    /// The header line exceeded [`WireLimits::max_header_len`].
    HeaderTooLong {
        /// The configured bound.
        limit: usize,
    },
    /// The declared payload length exceeded
    /// [`WireLimits::max_payload_len`].
    PayloadTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The header was not a well-formed token line.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::HeaderTooLong { limit } => {
                write!(f, "header line exceeds {limit} bytes")
            }
            WireError::PayloadTooLarge { declared, limit } => {
                write!(f, "declared payload of {declared} bytes exceeds limit {limit}")
            }
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether this error is a read timeout (the peer went quiet, not
    /// away) — surfaced by the per-connection `SO_RCVTIMEO`.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between requests); everything else that
/// falls short of a full frame is an error.
pub fn read_frame<R: BufRead>(r: &mut R, limits: &WireLimits) -> Result<Option<Frame>, WireError> {
    let mut header = Vec::new();
    // `take` caps how much one header read may buffer; an overlong line
    // shows up as a full buffer with no newline.
    let n = r.by_ref().take(limits.max_header_len as u64 + 1).read_until(b'\n', &mut header)?;
    if n == 0 {
        return Ok(None);
    }
    if header.last() != Some(&b'\n') {
        return if header.len() > limits.max_header_len {
            Err(WireError::HeaderTooLong { limit: limits.max_header_len })
        } else {
            Err(WireError::Truncated)
        };
    }
    header.pop();
    if header.last() == Some(&b'\r') {
        header.pop();
    }
    let line = std::str::from_utf8(&header)
        .map_err(|_| WireError::Malformed("header is not UTF-8".to_owned()))?;
    let mut tokens: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
    if tokens.is_empty() {
        return Err(WireError::Malformed("empty header line".to_owned()));
    }

    let mut payload = Vec::new();
    let declared = match tokens.last().and_then(|t| t.strip_prefix('#')) {
        Some(digits) => Some(
            digits
                .parse::<usize>()
                .map_err(|_| WireError::Malformed(format!("bad length marker #{digits}")))?,
        ),
        None => None,
    };
    if let Some(len) = declared {
        tokens.pop();
        if len > limits.max_payload_len {
            return Err(WireError::PayloadTooLarge {
                declared: len,
                limit: limits.max_payload_len,
            });
        }
        payload.resize(len, 0);
        r.read_exact(&mut payload).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?;
    }
    Ok(Some(Frame { tokens, payload }))
}

/// Writes one frame and flushes. Tokens must be non-empty and free of
/// whitespace — the caller builds them, so a violation is a programming
/// error reported as [`WireError::Malformed`] rather than silently
/// producing an unparseable header.
pub fn write_frame<W: Write>(w: &mut W, tokens: &[&str], payload: &[u8]) -> Result<(), WireError> {
    if tokens.is_empty() {
        return Err(WireError::Malformed("frame needs at least one token".to_owned()));
    }
    let mut header = String::new();
    for (i, token) in tokens.iter().enumerate() {
        if token.is_empty() || token.chars().any(char::is_whitespace) {
            return Err(WireError::Malformed(format!("token {token:?} contains whitespace")));
        }
        if i > 0 {
            header.push(' ');
        }
        header.push_str(token);
    }
    if !payload.is_empty() {
        header.push_str(&format!(" #{}", payload.len()));
    }
    header.push('\n');
    w.write_all(header.as_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(tokens: &[&str], payload: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, tokens, payload).unwrap();
        read_frame(&mut Cursor::new(buf), &WireLimits::default()).unwrap().unwrap()
    }

    #[test]
    fn roundtrips_header_only_and_payload_frames() {
        let f = roundtrip(&["PING"], b"");
        assert_eq!(f.verb(), "PING");
        assert!(f.payload.is_empty());

        let f = roundtrip(&["TXN"], b"dn: uid=x,o=acme\nobjectClass: person\n");
        assert_eq!(f.verb(), "TXN");
        assert!(f.payload_str().unwrap().starts_with("dn: uid=x"));

        // Payload may contain newlines and `#` freely.
        let f = roundtrip(&["OK", "entries", "3"], b"a\n#5 not a marker\n");
        assert_eq!(f.tokens, ["OK", "entries", "3"]);
        assert_eq!(f.payload, b"a\n#5 not a marker\n");
    }

    #[test]
    fn clean_eof_is_none_mid_frame_is_error() {
        let limits = WireLimits::default();
        assert!(read_frame(&mut Cursor::new(b"".to_vec()), &limits).unwrap().is_none());
        // Header without newline.
        assert!(matches!(
            read_frame(&mut Cursor::new(b"PING".to_vec()), &limits),
            Err(WireError::Truncated)
        ));
        // Declared payload longer than what follows.
        assert!(matches!(
            read_frame(&mut Cursor::new(b"TXN #10\nshort".to_vec()), &limits),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn limits_are_enforced() {
        let limits = WireLimits { max_header_len: 16, max_payload_len: 8 };
        let long = format!("SEARCH {}\n", "x".repeat(64));
        assert!(matches!(
            read_frame(&mut Cursor::new(long.into_bytes()), &limits),
            Err(WireError::HeaderTooLong { limit: 16 })
        ));
        assert!(matches!(
            read_frame(&mut Cursor::new(b"TXN #9\n123456789".to_vec()), &limits),
            Err(WireError::PayloadTooLarge { declared: 9, limit: 8 })
        ));
        // At the bound is fine.
        let f =
            read_frame(&mut Cursor::new(b"TXN #8\n12345678".to_vec()), &limits).unwrap().unwrap();
        assert_eq!(f.payload, b"12345678");
    }

    #[test]
    fn trace_context_token_is_stripped_wherever_it_rides() {
        let mut f = roundtrip(&["SEARCH", "sub", "tc=cli-2.0"], b"filter: (objectClass=*)\n");
        let ctx = f.take_trace_context().expect("token present");
        assert_eq!((ctx.trace_id.as_str(), ctx.parent_span), ("cli-2", 0));
        assert_eq!(f.tokens, ["SEARCH", "sub"]);
        assert!(f.take_trace_context().is_none(), "token removed on first take");
        // Foreign tokens stay put.
        let mut f = roundtrip(&["BIND", "tc=x"], b"");
        assert!(f.take_trace_context().is_none());
        assert_eq!(f.tokens, ["BIND", "tc=x"]);
    }

    #[test]
    fn malformed_headers_are_rejected() {
        let limits = WireLimits::default();
        assert!(matches!(
            read_frame(&mut Cursor::new(b"\n".to_vec()), &limits),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            read_frame(&mut Cursor::new(b"TXN #12x\n".to_vec()), &limits),
            Err(WireError::Malformed(_))
        ));
        assert!(write_frame(&mut Vec::new(), &["two words"], b"").is_err());
        assert!(write_frame(&mut Vec::new(), &[], b"").is_err());
    }
}
