//! The session/worker subsystem: TCP acceptor, bounded connection
//! queue, worker pool, and the per-session request loop.
//!
//! ## Verb table
//!
//! | request                                   | response                          |
//! |-------------------------------------------|-----------------------------------|
//! | `BIND <name>`                             | `OK bound <name>`                 |
//! | `PING`                                    | `OK pong <len>`                   |
//! | `SEARCH [base\|one\|sub] #n` + body       | `OK entries <n> #m` + LDIF        |
//! | `SEARCH [base\|one\|sub] explain #n` + body | `OK explain <n> #m` + plan JSON |
//! | `TXN #n` + LDIF changes                   | `OK committed <ops> <len> <shards>` |
//! | `MODIFY #n` + mod lines                   | `OK modified <len>`               |
//! | `METRICS`                                 | `OK metrics #n` + JSON            |
//! | `METRICS prom`                            | `OK metrics #n` + text exposition |
//! | `STATS`                                   | `OK stats #n` + delta JSON        |
//! | `TRACE`                                   | `OK trace #n` + flight JSON       |
//! | `HEALTH`                                  | `OK health #n` + verdict JSON     |
//! | `WATCH [count]`                           | `OK watch <count> <interval_ms>`, then `TICK <seq> #n` frames, then `OK watch-end <streamed>` |
//! | `SCHEMA PROPOSE #n` + DSL or step         | `OK schema #m` + proposal JSON    |
//! | `SCHEMA CHECK`                            | `OK schema #m` + recheck JSON     |
//! | `SCHEMA STATUS`                           | `OK schema #m` + epoch JSON       |
//! | `SCHEMA COMMIT`                           | `OK schema #m` + cutover JSON     |
//! | `SCHEMA ABORT`                            | `OK schema #m` + abort JSON       |
//! | `CHECKPOINT`                              | `OK checkpointed <seq,...>`       |
//! | `SHIP`                                    | `OK ship-ckpt <seq> <next_tx> #n` + checkpoint text |
//! | `SHIP <from-seq>`                         | `OK ship <from> <next> #n` + journal records |
//! | `SHUTDOWN`                                | `OK bye` (then server drains)     |
//! | `UNBIND`                                  | `OK bye` (closes the session)     |
//!
//! `SEARCH` bodies are `key: value` lines — `filter:` (required),
//! `base:` and `limit:` (optional). `MODIFY` bodies are a `dn:` line
//! followed by `add:`/`deletevalue:`/`deleteattr:`/`replace:` lines.
//! Failures are `ERR <code> [#n]` with the detail as payload; codes are
//! stable (see [`crate::service::ServiceError`]).
//!
//! `CHECKPOINT` forces a checkpoint + journal-truncate cycle and
//! answers with the covered seq per shard. `SHIP` is the replication
//! protocol (journaled single-engine primaries only): with no argument
//! it captures and returns a fresh checkpoint for a follower to
//! bootstrap from; with a `from-seq` it returns the committed journal
//! records from that seq to the primary's cursor (possibly empty when
//! the follower is caught up). `ERR ship-gap` tells the follower its
//! cursor predates the retained journal — it must re-bootstrap.
//!
//! Any request may additionally carry a `tc=<trace-id>.<parent-span>`
//! header token (see [`bschema_obs::TraceContext`]): on a server started
//! with a flight recorder, the whole request — queue wait, journal
//! write, legality check, per-Δ-query spans — is collected as one span
//! tree under that id, retrievable via `TRACE`. `METRICS` dumps the
//! cumulative registry (counters **and** quantile histograms); `STATS`
//! returns only the deltas since the previous `STATS` scrape.
//!
//! `SCHEMA` is the online evolution plane (see
//! [`crate::service::DirectoryService::schema_propose`]): `PROPOSE`
//! stages a full schema-DSL replacement or a single `Evolution-step:`
//! payload, `CHECK` rechecks a restricting proposal against a live
//! snapshot off the write path, `COMMIT` revalidates under the write
//! lock and atomically swaps the schema epoch (journaled as a schema
//! record on every shard), and `ABORT` discards the staged proposal.
//! Relaxing-only proposals (Definition 2.7) skip the recheck entirely.
//!
//! `HEALTH` and `WATCH` need a server started with a monitor interval:
//! `HEALTH` returns the aggregated per-shard verdict JSON (see
//! [`crate::service::DirectoryService::health_json`]), and `WATCH`
//! turns the session into a bounded server-push stream — one `TICK`
//! frame per monitor tick until `count` frames have been streamed, the
//! client hangs up (cancellation), or the server shuts down. `METRICS
//! prom` renders the same registry in Prometheus-style text exposition
//! for scrape pipelines.
//!
//! ## Backpressure and shutdown
//!
//! The acceptor never blocks on workers: accepted sockets go into a
//! bounded queue, and when it is full the connection is answered
//! `ERR busy` and closed immediately — overload is visible to clients,
//! not an unbounded backlog. On shutdown the flag flips, in-flight
//! requests run to completion (a committing transaction is never
//! interrupted), queued-but-unserved connections are answered
//! `ERR shutting-down`, and the workers drain and exit.
//!
//! A worker panic inside a request (including an injected fault) is
//! caught per-request: the session answers `ERR panicked` and carries
//! on. The directory itself is protected a layer below — see
//! [`crate::service`].

use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bschema_core::updates::Mod;
use bschema_query::SearchScope;

use crate::codec::{read_frame, write_frame, Frame, WireError};
use crate::service::{DirectoryService, ServiceError};

/// Tuning knobs for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads serving sessions.
    pub threads: usize,
    /// Bounded depth of the accepted-connection queue; beyond it new
    /// connections are answered `ERR busy`.
    pub queue_depth: usize,
    /// Per-connection read timeout (a quiet client is disconnected).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// A bounded MPMC queue: non-blocking reject-on-full push (the
/// backpressure edge), blocking pop, and a close signal that wakes all
/// poppers once the remaining items drain.
#[derive(Debug)]
struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues, or returns the item when the queue is full or closed.
    fn push(&self, item: T) -> Result<usize, T> {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained.
    fn pop(&self) -> Option<T> {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        self.available.notify_all();
    }
}

/// A running server. Obtained from [`Server::spawn`]; shut down via
/// [`ServerHandle::shutdown`] + [`ServerHandle::wait`] or remotely with
/// the `SHUTDOWN` verb.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
    service: Arc<DirectoryService>,
}

impl ServerHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service behind the server.
    pub fn service(&self) -> &Arc<DirectoryService> {
        &self.service
    }

    /// Signals shutdown: the acceptor stops, workers drain. Does not
    /// block; follow with [`wait`](ServerHandle::wait).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been signalled (locally or via the
    /// `SHUTDOWN` verb).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Joins the acceptor and every worker, consuming the handle. The
    /// acceptor notices the shutdown flag within its poll interval and
    /// closes the queue, which releases the workers.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
    }
}

/// The server entry point.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `config.addr` and spawns the acceptor plus
    /// `config.threads` workers over `service`. Returns immediately.
    pub fn spawn(service: Arc<DirectoryService>, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::<(TcpStream, Instant)>::new(config.queue_depth));

        let mut workers = Vec::with_capacity(config.threads.max(1));
        for i in 0..config.threads.max(1) {
            let queue = queue.clone();
            let service = service.clone();
            let shutdown = shutdown.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("bschema-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &service, &shutdown))?,
            );
        }

        let acceptor = {
            let queue = queue.clone();
            let service = service.clone();
            let shutdown = shutdown.clone();
            let config = config.clone();
            thread::Builder::new().name("bschema-acceptor".to_owned()).spawn(move || {
                accept_loop(&listener, &queue, &service, &shutdown, &config);
                queue.close();
            })?
        };

        // The sampler thread behind `HEALTH`/`WATCH`: one tick per
        // configured interval, sleeping in short chunks so shutdown is
        // noticed promptly. A probe/fault panic inside a tick must not
        // kill the plane — the next tick simply runs.
        let monitor = match service.monitor() {
            Some(m) => {
                let interval = m.config().interval;
                let service = service.clone();
                let shutdown = shutdown.clone();
                Some(thread::Builder::new().name("bschema-monitor".to_owned()).spawn(
                    move || {
                        while !shutdown.load(Ordering::SeqCst) {
                            let _ = catch_unwind(AssertUnwindSafe(|| {
                                service.monitor_tick();
                            }));
                            let mut slept = Duration::ZERO;
                            while slept < interval && !shutdown.load(Ordering::SeqCst) {
                                let chunk = (interval - slept).min(Duration::from_millis(50));
                                thread::sleep(chunk);
                                slept += chunk;
                            }
                        }
                    },
                )?)
            }
            None => None,
        };

        Ok(ServerHandle { addr, shutdown, acceptor: Some(acceptor), workers, monitor, service })
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue: &BoundedQueue<(TcpStream, Instant)>,
    service: &DirectoryService,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(config.read_timeout));
                let _ = stream.set_write_timeout(Some(config.write_timeout));
                let _ = stream.set_nodelay(true);
                // Instrumentation faults must not kill the acceptor:
                // a dead acceptor turns a probe panic into a silent
                // refusal of all future connections.
                match queue.push((stream, Instant::now())) {
                    Ok(depth) => {
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            service.probe().observe("server.queue_depth", depth as u64);
                        }));
                    }
                    Err((mut stream, _)) => {
                        // Backpressure edge: refuse loudly, don't buffer.
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            service.probe().add("server.rejected_busy", 1);
                        }));
                        let _ = write_frame(&mut stream, &["ERR", "busy"], b"");
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn worker_loop(
    queue: &BoundedQueue<(TcpStream, Instant)>,
    service: &DirectoryService,
    shutdown: &AtomicBool,
) {
    while let Some((stream, queued_at)) = queue.pop() {
        if shutdown.load(Ordering::SeqCst) {
            // Queued but never served: tell the client why.
            let mut stream = stream;
            let _ = write_frame(&mut stream, &["ERR", "shutting-down"], b"");
            continue;
        }
        // How long the connection sat in the accept queue before a
        // worker picked it up — attributed to the first request's trace.
        let queue_wait_us = queued_at.elapsed().as_micros() as u64;
        serve_session(stream, service, shutdown, queue_wait_us);
    }
}

/// What a handled frame asks the session loop to do next.
enum Control {
    Continue,
    CloseSession,
    ShutdownServer,
}

fn serve_session(
    stream: TcpStream,
    service: &DirectoryService,
    shutdown: &AtomicBool,
    queue_wait_us: u64,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let wire = service.limits().wire;
    let mut queue_wait = Some(queue_wait_us);

    loop {
        // Drain in-flight work, then refuse new frames during shutdown.
        if shutdown.load(Ordering::SeqCst) {
            let _ = write_frame(&mut writer, &["ERR", "shutting-down"], b"");
            return;
        }
        let mut frame = match read_frame(&mut reader, &wire) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(e) if e.is_timeout() => {
                let _ = write_frame(&mut writer, &["ERR", "timeout"], b"");
                return;
            }
            Err(WireError::Io(_)) | Err(WireError::Truncated) => return,
            Err(e @ WireError::HeaderTooLong { .. })
            | Err(e @ WireError::PayloadTooLarge { .. }) => {
                // The oversize bytes are still in flight; reply and cut
                // the connection rather than resynchronise. The refusal
                // still shows up in the flight recorder: a terminated
                // request span carrying the rejection code.
                record_rejected_frame(service, "limit");
                let _ = write_frame(&mut writer, &["ERR", "limit"], e.to_string().as_bytes());
                return;
            }
            Err(e @ WireError::Malformed(_)) => {
                record_rejected_frame(service, "proto");
                let _ = write_frame(&mut writer, &["ERR", "proto"], e.to_string().as_bytes());
                return;
            }
        };

        // WATCH turns the session into a server-push stream; it needs
        // the writer, which handle_frame never sees, so it is dispatched
        // here ahead of the one-request/one-response path.
        if frame.verb() == "WATCH" {
            service.probe().add_labeled("server.request", "WATCH", 1);
            if handle_watch(service, &mut frame, &mut writer, shutdown) {
                continue;
            }
            return;
        }

        let started = Instant::now();
        let verb = frame.verb().to_owned();
        service.probe().add_labeled("server.request", &verb, 1);

        // Traced mode (flight recorder attached): open the request's
        // span root and attribute the connection's accept-queue wait to
        // its first request.
        let ctx = frame.take_trace_context();
        let trace = service.begin_trace("server.request");
        if let (Some(trace), Some(wait)) = (&trace, queue_wait.take()) {
            trace.note_wait("server.queue_wait", wait);
        }

        // Per-request blast-radius: a panic (real bug or injected
        // fault) poisons nothing — the service's guarded paths have
        // already restored their state — so the session apologises and
        // keeps going.
        let outcome =
            catch_unwind(AssertUnwindSafe(|| handle_frame(service, &frame, trace.as_ref())));
        let (response, control) = match outcome {
            Ok((response, control)) => (response, control),
            Err(payload) => {
                service.probe().add("server.request_panicked", 1);
                let detail = bschema_faults::panic_message(&payload).unwrap_or("worker panicked");
                (Response::err("panicked", detail), Control::Continue)
            }
        };

        // Request telemetry: the all-verbs histogram (scrape loops and
        // the bench harness key off it), a per-verb latency series, and
        // a per-rejection-code series for everything that wasn't OK.
        let status = match response.tokens.first().map(String::as_str) {
            Some("ERR") => response.tokens.get(1).map_or("error", String::as_str).to_owned(),
            _ => "ok".to_owned(),
        };
        let elapsed_us = started.elapsed().as_micros() as u64;
        service.probe().observe("server.request_micros", elapsed_us);
        service.probe().observe(&format!("server.request_us.{verb}"), elapsed_us);
        if status != "ok" {
            service.probe().observe(&format!("server.rejected_us.{status}"), elapsed_us);
        }
        if let (Some(trace), Some(flight)) = (&trace, service.flight()) {
            let (root, dur_us) = trace.finish();
            let trace_id = ctx.as_ref().map_or("unstamped", |c| c.trace_id.as_str());
            flight.record(trace_id, &verb, &status, dur_us, root);
        }

        let tokens: Vec<&str> = response.tokens.iter().map(String::as_str).collect();
        if write_frame(&mut writer, &tokens, &response.payload).is_err() {
            return;
        }

        match control {
            Control::Continue => {}
            Control::CloseSession => return,
            Control::ShutdownServer => {
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

/// Flight-records a frame the codec refused before it ever became a
/// request: a terminated `server.request` span with the rejection code
/// as its status, so wire-limit violations are visible in `TRACE`
/// output and not just as a closed socket.
fn record_rejected_frame(service: &DirectoryService, code: &str) {
    let (Some(trace), Some(flight)) = (service.begin_trace("server.request"), service.flight())
    else {
        return;
    };
    let (root, dur_us) = trace.finish();
    flight.record("unstamped", "-", code, dur_us, root);
}

struct Response {
    tokens: Vec<String>,
    payload: Vec<u8>,
}

impl Response {
    fn ok(tokens: &[&str]) -> Self {
        let mut all = vec!["OK".to_owned()];
        all.extend(tokens.iter().map(|s| (*s).to_owned()));
        Response { tokens: all, payload: Vec::new() }
    }

    fn ok_payload(tokens: &[&str], payload: impl Into<Vec<u8>>) -> Self {
        let mut r = Response::ok(tokens);
        r.payload = payload.into();
        r
    }

    fn err(code: &str, detail: &str) -> Self {
        Response {
            tokens: vec!["ERR".to_owned(), code.to_owned()],
            payload: detail.as_bytes().to_vec(),
        }
    }
}

impl From<ServiceError> for Response {
    fn from(e: ServiceError) -> Self {
        Response::err(e.code, &e.detail)
    }
}

fn handle_frame(
    service: &DirectoryService,
    frame: &Frame,
    trace: Option<&Arc<bschema_obs::RequestTrace>>,
) -> (Response, Control) {
    match frame.verb() {
        "BIND" => {
            let who = frame.arg(1).unwrap_or("anonymous");
            (Response::ok(&["bound", who]), Control::Continue)
        }
        "PING" => {
            let len = service.len().to_string();
            (Response::ok(&["pong", &len]), Control::Continue)
        }
        "SEARCH" => (handle_search(service, frame, trace), Control::Continue),
        "TXN" => {
            let response = match frame.payload_str() {
                Ok(ldif) => match service.apply_ldif_tx_traced(ldif, trace) {
                    // The trailing token is the shard count the commit
                    // touched (1 on a single-engine server); older
                    // clients ignore it.
                    Ok(outcome) => Response::ok(&[
                        "committed",
                        &outcome.ops.to_string(),
                        &outcome.len.to_string(),
                        &outcome.shards.to_string(),
                    ]),
                    Err(e) => e.into(),
                },
                Err(e) => Response::err("proto", &e.to_string()),
            };
            (response, Control::Continue)
        }
        "MODIFY" => (handle_modify(service, frame), Control::Continue),
        "SCHEMA" => (handle_schema(service, frame), Control::Continue),
        "CHECKPOINT" => (handle_checkpoint(service), Control::Continue),
        "SHIP" => (handle_ship(service, frame), Control::Continue),
        "METRICS" => (handle_metrics(service, frame), Control::Continue),
        "STATS" => (handle_stats(service), Control::Continue),
        "TRACE" => (handle_trace(service), Control::Continue),
        "HEALTH" => (handle_health(service), Control::Continue),
        "SHUTDOWN" => (Response::ok(&["bye"]), Control::ShutdownServer),
        "UNBIND" => (Response::ok(&["bye"]), Control::CloseSession),
        other => {
            (Response::err("proto", &format!("unknown verb {other:?}")), Control::CloseSession)
        }
    }
}

fn handle_search(
    service: &DirectoryService,
    frame: &Frame,
    trace: Option<&Arc<bschema_obs::RequestTrace>>,
) -> Response {
    let scope = match frame.arg(1).unwrap_or("sub") {
        "base" => SearchScope::Base,
        "one" => SearchScope::OneLevel,
        "sub" => SearchScope::Subtree,
        other => return Response::err("usage", &format!("unknown scope {other:?}")),
    };
    let explain = match frame.arg(2) {
        None => false,
        Some("explain") => true,
        Some(other) => return Response::err("usage", &format!("unknown search flag {other:?}")),
    };
    let body = match frame.payload_str() {
        Ok(body) => body,
        Err(e) => return Response::err("proto", &e.to_string()),
    };
    let mut base = None;
    let mut filter = None;
    let mut limit = None;
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            return Response::err("usage", &format!("expected `key: value`, got {line:?}"));
        };
        let value = value.trim();
        match key.trim() {
            "base" => base = Some(value.to_owned()),
            "filter" => filter = Some(value.to_owned()),
            "limit" => match value.parse::<usize>() {
                Ok(n) => limit = Some(n),
                Err(_) => return Response::err("usage", &format!("bad limit {value:?}")),
            },
            other => return Response::err("usage", &format!("unknown search key {other:?}")),
        }
    }
    let Some(filter) = filter else {
        return Response::err("usage", "search body needs a `filter:` line");
    };
    if explain {
        return match service.search_explain(base.as_deref(), scope, &filter, limit) {
            Ok((n, json)) => Response::ok_payload(&["explain", &n.to_string()], json.into_bytes()),
            Err(e) => e.into(),
        };
    }
    match service.search_traced(base.as_deref(), scope, &filter, limit, trace) {
        Ok((n, ldif)) => Response::ok_payload(&["entries", &n.to_string()], ldif.into_bytes()),
        Err(e) => e.into(),
    }
}

fn handle_modify(service: &DirectoryService, frame: &Frame) -> Response {
    let body = match frame.payload_str() {
        Ok(body) => body,
        Err(e) => return Response::err("proto", &e.to_string()),
    };
    let mut dn = None;
    let mut mods: Vec<Mod> = Vec::new();
    // `replace:` lines for the same attribute accumulate into one
    // multi-valued Replace.
    let mut replacing: Option<(String, Vec<String>)> = None;
    let flush_replace = |replacing: &mut Option<(String, Vec<String>)>, mods: &mut Vec<Mod>| {
        if let Some((attribute, values)) = replacing.take() {
            mods.push(Mod::Replace { attribute, values });
        }
    };
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((op, rest)) = line.split_once(':') else {
            return Response::err("usage", &format!("expected `op: ...`, got {line:?}"));
        };
        let rest = rest.trim();
        let attr_value = || -> Option<(String, String)> {
            rest.split_once(':').map(|(a, v)| (a.trim().to_owned(), v.trim().to_owned()))
        };
        match op.trim() {
            "dn" => dn = Some(rest.to_owned()),
            "add" => {
                flush_replace(&mut replacing, &mut mods);
                let Some((attribute, value)) = attr_value() else {
                    return Response::err("usage", &format!("add needs `attr: value`: {line:?}"));
                };
                mods.push(Mod::Add { attribute, value });
            }
            "deletevalue" => {
                flush_replace(&mut replacing, &mut mods);
                let Some((attribute, value)) = attr_value() else {
                    return Response::err(
                        "usage",
                        &format!("deletevalue needs `attr: value`: {line:?}"),
                    );
                };
                mods.push(Mod::DeleteValue { attribute, value });
            }
            "deleteattr" => {
                flush_replace(&mut replacing, &mut mods);
                mods.push(Mod::DeleteAttribute { attribute: rest.to_owned() });
            }
            "replace" => {
                let Some((attribute, value)) = attr_value() else {
                    return Response::err(
                        "usage",
                        &format!("replace needs `attr: value`: {line:?}"),
                    );
                };
                match &mut replacing {
                    Some((current, values)) if *current == attribute => {
                        values.push(value);
                    }
                    _ => {
                        flush_replace(&mut replacing, &mut mods);
                        replacing = Some((attribute, vec![value]));
                    }
                }
            }
            other => return Response::err("usage", &format!("unknown modify op {other:?}")),
        }
    }
    flush_replace(&mut replacing, &mut mods);
    let Some(dn) = dn else {
        return Response::err("usage", "modify body needs a `dn:` line");
    };
    if mods.is_empty() {
        return Response::err("usage", "modify body has no modification lines");
    }
    match service.modify(&dn, &mods) {
        Ok(outcome) => Response::ok(&["modified", &outcome.len.to_string()]),
        Err(e) => e.into(),
    }
}

/// `SCHEMA <PROPOSE|CHECK|STATUS|COMMIT|ABORT>` — the online schema
/// evolution plane. `PROPOSE` carries the proposal in the payload
/// (evolution steps or a full schema-DSL document); the other
/// subcommands take no payload. Every response carries a JSON body.
fn handle_schema(service: &DirectoryService, frame: &Frame) -> Response {
    let sub = frame.arg(1).unwrap_or("");
    let result = match sub.to_ascii_uppercase().as_str() {
        "PROPOSE" => match frame.payload_str() {
            Ok(payload) => service.schema_propose(payload),
            Err(e) => return Response::err("proto", &e.to_string()),
        },
        "CHECK" => service.schema_check(),
        "STATUS" => Ok(service.schema_status()),
        "COMMIT" => service.schema_commit(),
        "ABORT" => service.schema_abort(),
        other => {
            return Response::err(
                "usage",
                &format!("unknown SCHEMA subcommand {other:?}; expected PROPOSE, CHECK, STATUS, COMMIT or ABORT"),
            )
        }
    };
    match result {
        Ok(body) => Response::ok_payload(&["schema"], body.into_bytes()),
        Err(e) => e.into(),
    }
}

fn handle_checkpoint(service: &DirectoryService) -> Response {
    match service.checkpoint_now() {
        Ok(seqs) => {
            let list = seqs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
            Response::ok(&["checkpointed", &list])
        }
        Err(e) => e.into(),
    }
}

fn handle_ship(service: &DirectoryService, frame: &Frame) -> Response {
    match frame.arg(1) {
        // Bootstrap: a fresh checkpoint of the committed state.
        None => match service.ship_bootstrap() {
            Ok((seq, next_tx, text)) => Response::ok_payload(
                &["ship-ckpt", &seq.to_string(), &next_tx.to_string()],
                text.into_bytes(),
            ),
            Err(e) => e.into(),
        },
        // Tail: the committed journal records from the follower's cursor.
        Some(arg) => {
            let from_seq = match arg.parse::<u64>() {
                Ok(n) => n,
                Err(_) => return Response::err("usage", &format!("bad from-seq {arg:?}")),
            };
            match service.ship_tail(from_seq) {
                Ok((next, text)) => Response::ok_payload(
                    &["ship", &from_seq.to_string(), &next.to_string()],
                    text.into_bytes(),
                ),
                Err(e) => e.into(),
            }
        }
    }
}

fn handle_metrics(service: &DirectoryService, frame: &Frame) -> Response {
    match frame.arg(1) {
        None => match service.metrics_json() {
            Some(json) => Response::ok_payload(&["metrics"], json.into_bytes()),
            None => Response::err("unsupported", "server started without --metrics"),
        },
        Some("prom") => match service.metrics_prom() {
            Some(text) => Response::ok_payload(&["metrics"], text.into_bytes()),
            None => Response::err("unsupported", "server started without --metrics"),
        },
        Some(other) => Response::err("usage", &format!("unknown metrics mode {other:?}")),
    }
}

fn handle_health(service: &DirectoryService) -> Response {
    match service.health_json() {
        Some(json) => Response::ok_payload(&["health"], json.into_bytes()),
        None => Response::err("unsupported", "server started without --monitor-interval"),
    }
}

/// Serves a `WATCH` stream: `OK watch <count> <interval_ms>`, then one
/// `TICK <seq>` frame per monitor tick, then `OK watch-end <streamed>`.
/// Returns whether the session survives. A failed `TICK` write means
/// the watcher hung up — that is how a stream is cancelled — and a
/// watcher too slow to drain its socket is cut by the write timeout,
/// so a stalled client never wedges a worker or buffers unboundedly.
fn handle_watch(
    service: &DirectoryService,
    frame: &mut Frame,
    writer: &mut TcpStream,
    shutdown: &AtomicBool,
) -> bool {
    // A stamped trace token would otherwise be mistaken for the count.
    let _ = frame.take_trace_context();
    let Some(monitor) = service.monitor() else {
        return write_frame(
            writer,
            &["ERR", "unsupported"],
            b"server started without --monitor-interval",
        )
        .is_ok();
    };
    let count = match frame.arg(1) {
        None => 60u64,
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) if (1..=100_000).contains(&n) => n,
            _ => {
                let detail = format!("bad watch count {raw:?} (1..=100000)");
                return write_frame(writer, &["ERR", "usage"], detail.as_bytes()).is_ok();
            }
        },
    };
    let interval_ms = monitor.config().interval.as_millis().to_string();
    if write_frame(writer, &["OK", "watch", &count.to_string(), &interval_ms], b"").is_err() {
        return false;
    }
    // Stream only ticks published after the subscription started.
    let mut last_seq = monitor.latest_seq();
    let mut streamed = 0u64;
    while streamed < count {
        if shutdown.load(Ordering::SeqCst) {
            let _ = write_frame(writer, &["ERR", "shutting-down"], b"");
            return false;
        }
        let Some((seq, json)) = monitor.wait_for_tick(last_seq, Duration::from_millis(250)) else {
            continue;
        };
        last_seq = seq;
        if write_frame(writer, &["TICK", &seq.to_string()], json.as_bytes()).is_err() {
            service.probe().add("server.watch_cancelled", 1);
            return false;
        }
        streamed += 1;
    }
    write_frame(writer, &["OK", "watch-end", &streamed.to_string()], b"").is_ok()
}

fn handle_stats(service: &DirectoryService) -> Response {
    match service.stats_json() {
        Some(json) => Response::ok_payload(&["stats"], json.into_bytes()),
        None => Response::err("unsupported", "server started without --metrics"),
    }
}

fn handle_trace(service: &DirectoryService) -> Response {
    match service.trace_json() {
        Some(json) => Response::ok_payload(&["trace"], json.into_bytes()),
        None => Response::err("unsupported", "server started without --trace"),
    }
}
