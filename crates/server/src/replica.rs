//! Read replicas: crash-consistent followers fed over the `SHIP` verb.
//!
//! A [`Follower`] tracks one journaled single-engine primary:
//!
//! 1. **Bootstrap** — `SHIP` (no argument) makes the primary capture a
//!    fresh checkpoint of its committed state under the write lock and
//!    return it. The follower verifies the schema hash (adopting the
//!    checkpoint's embedded schema when the primary has evolved past
//!    the follower's boot schema), restores the
//!    slot-exact forest ([`Checkpoint::restore`] via
//!    [`recover_with_checkpoint`]), and starts its cursor at the
//!    checkpoint's covered seq. Slot-exactness matters: every later
//!    shipped record names entries by slot, so primary and replica must
//!    agree on the arena layout, not just the logical forest.
//! 2. **Tail sync** — `SHIP <cursor>` returns the committed journal
//!    records from the cursor to the primary's current cursor. The
//!    chunk parses standalone ([`Journal::parse`] accepts any starting
//!    seq) and every committed transaction applies through
//!    [`DirectoryService::replicate_tx`] — the same legality engine
//!    client writes go through, so an ill-shipped record can never
//!    corrupt the replica. The primary serves `SHIP` under its write
//!    mutex, so a shipped chunk never straddles an in-flight commit:
//!    any uncommitted transaction in a chunk is permanently aborted and
//!    safely skipped.
//! 3. **Re-bootstrap** — `ERR ship-gap` means the cursor predates the
//!    retained journal (a checkpoint truncated it, or a
//!    degraded-durability append lost a record). The follower fetches a
//!    fresh checkpoint and swaps it in via
//!    [`DirectoryService::install_follower_state`].
//!
//! The follower keeps **no on-disk state**: its durability story is
//! "re-bootstrap from the primary", which is exactly the crash model
//! the chaos suite drives. Replication lag is published through the
//! shared [`ReplicationState`] gauges, so the replica's own `HEALTH`
//! verb reports `replication_lag_records` and `ship_age_s`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bschema_core::checkpoint::{recover_with_checkpoint, schema_hash, Checkpoint};
use bschema_core::journal::Journal;
use bschema_core::schema::DirectorySchema;
use bschema_core::ManagedDirectory;
use bschema_directory::attribute::AttributeRegistry;
use bschema_directory::DirectoryInstance;

use crate::client::{Client, ClientError};
use crate::service::{DirectoryService, ReplicationState};

/// A replication failure on the follower side.
#[derive(Debug)]
pub enum FollowerError {
    /// The exchange with the primary failed (socket, wire, or an
    /// `ERR` refusal other than `ship-gap`).
    Client(ClientError),
    /// The shipped checkpoint does not restore under this schema.
    Bootstrap(String),
    /// A shipped transaction did not apply on the replica.
    Apply(String),
}

impl std::fmt::Display for FollowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FollowerError::Client(e) => write!(f, "ship exchange failed: {e}"),
            FollowerError::Bootstrap(why) => write!(f, "bootstrap failed: {why}"),
            FollowerError::Apply(why) => write!(f, "replication apply failed: {why}"),
        }
    }
}

impl std::error::Error for FollowerError {}

impl From<ClientError> for FollowerError {
    fn from(e: ClientError) -> Self {
        FollowerError::Client(e)
    }
}

/// What one [`Follower::sync_once`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Committed transactions applied this pass.
    pub applied: u64,
    /// Whether this pass re-bootstrapped from a fresh checkpoint.
    pub bootstrapped: bool,
    /// The follower's cursor after the pass — the next seq it will ask
    /// the primary for.
    pub cursor: u64,
}

/// The ship loop tracking one primary. See the module docs for the
/// protocol.
pub struct Follower {
    addr: String,
    schema: DirectorySchema,
    service: Arc<DirectoryService>,
    replication: Arc<ReplicationState>,
    client: Option<Client>,
    cursor: u64,
}

impl Follower {
    /// Fetches the primary's bootstrap checkpoint and restores it into
    /// a managed directory. Returns `(managed, cursor)` — build a
    /// read-only [`DirectoryService`] around the directory, then
    /// [`attach`](Follower::attach) it.
    ///
    /// Split from `attach` so the caller can finish the service builder
    /// chain (probe, recorder, monitor, limits) before the service is
    /// shared.
    pub fn bootstrap_state(
        addr: &str,
        schema: &DirectorySchema,
    ) -> Result<(ManagedDirectory, u64), FollowerError> {
        let mut client = Client::connect(addr)?;
        let (seq, _next_tx, text) = client.ship_bootstrap()?;
        let (managed, _adopted) = decode_state(schema, &text)?;
        Ok((managed, seq))
    }

    /// Wires a follower around a service built from
    /// [`bootstrap_state`](Follower::bootstrap_state). The service must
    /// carry the same `replication` gauges
    /// ([`DirectoryService::with_replication`]); this records the
    /// initial bootstrap on them.
    pub fn attach(
        addr: impl Into<String>,
        schema: DirectorySchema,
        service: Arc<DirectoryService>,
        replication: Arc<ReplicationState>,
        cursor: u64,
    ) -> Follower {
        replication.record_bootstrap();
        replication.record_ship(cursor, cursor, service.uptime_us());
        Follower { addr: addr.into(), schema, service, replication, client: None, cursor }
    }

    /// The replica service this follower feeds.
    pub fn service(&self) -> &Arc<DirectoryService> {
        &self.service
    }

    /// The next seq this follower will request.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// One sync pass: ship the tail from the cursor and apply it;
    /// on `ship-gap`, re-bootstrap from a fresh checkpoint. Transport
    /// errors drop the cached connection so the next pass reconnects.
    pub fn sync_once(&mut self) -> Result<SyncReport, FollowerError> {
        let outcome = self.try_ship();
        match outcome {
            Ok(report) => Ok(report),
            Err(e) => {
                self.client = None;
                self.replication.record_error();
                Err(e)
            }
        }
    }

    fn try_ship(&mut self) -> Result<SyncReport, FollowerError> {
        if self.client.is_none() {
            self.client = Some(Client::connect(&self.addr)?);
        }
        let Some(client) = self.client.as_mut() else {
            return Err(FollowerError::Bootstrap("no connection".to_owned()));
        };
        let cursor = self.cursor;
        match client.ship_tail(cursor) {
            Ok((source_cursor, text)) => self.apply_chunk(source_cursor, &text),
            Err(ClientError::Server { ref code, .. }) if code == "ship-gap" => self.rebootstrap(),
            // An injected `ship.serve` fault panics the primary's
            // request, not the primary: retrying the same cursor on a
            // fresh exchange converges.
            Err(e) => Err(e.into()),
        }
    }

    /// Applies a shipped chunk. `source_cursor` is the primary's journal
    /// cursor at ship time; after every committed transaction in the
    /// chunk has applied, the follower's cursor jumps there (uncommitted
    /// transactions in a chunk are permanently aborted — the primary
    /// ships under the same mutex commits hold).
    fn apply_chunk(&mut self, source_cursor: u64, text: &str) -> Result<SyncReport, FollowerError> {
        let parsed = Journal::parse(text);
        let mut applied = 0u64;
        for jtx in parsed.committed() {
            if jtx.first_seq < self.cursor {
                continue;
            }
            self.service.replicate_tx(jtx).map_err(|e| FollowerError::Apply(e.to_string()))?;
            // A shipped schema record moves the replica to the new
            // epoch; track it so a later re-bootstrap expects the
            // evolved schema's hash rather than the boot schema's.
            if let Some(schema) = &jtx.schema {
                self.schema =
                    schema.engine_schema().map_err(|e| FollowerError::Apply(e.to_string()))?;
            }
            applied += 1;
        }
        self.cursor = self.cursor.max(source_cursor);
        self.replication.record_ship(self.cursor, source_cursor, self.service.uptime_us());
        Ok(SyncReport { applied, bootstrapped: false, cursor: self.cursor })
    }

    /// The `ship-gap` path: fetch a fresh checkpoint and swap it in.
    fn rebootstrap(&mut self) -> Result<SyncReport, FollowerError> {
        let Some(client) = self.client.as_mut() else {
            return Err(FollowerError::Bootstrap("no connection".to_owned()));
        };
        let (seq, _next_tx, text) = client.ship_bootstrap()?;
        let (managed, schema) = decode_state(&self.schema, &text)?;
        self.service
            .install_follower_state(managed)
            .map_err(|e| FollowerError::Bootstrap(e.to_string()))?;
        self.schema = schema;
        self.cursor = seq;
        self.replication.record_bootstrap();
        self.replication.record_ship(seq, seq, self.service.uptime_us());
        Ok(SyncReport { applied: 0, bootstrapped: true, cursor: seq })
    }

    /// The follower loop: sync every `interval` until `stop` flips.
    /// Failures are recorded on the gauges (and the connection is
    /// re-established next pass) — a follower outlives primary
    /// restarts.
    pub fn run(&mut self, interval: Duration, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            let _ = self.sync_once();
            // Chunked sleep so shutdown is prompt even with slow polls.
            let mut remaining = interval;
            while !stop.load(Ordering::Relaxed) && remaining > Duration::ZERO {
                let step = remaining.min(Duration::from_millis(25));
                std::thread::sleep(step);
                remaining = remaining.saturating_sub(step);
            }
        }
    }
}

/// Decodes + restores a shipped checkpoint under `schema`, returning
/// the managed replica state and the schema it was restored under.
/// Unlike recovery on the primary (where a mismatched checkpoint
/// degrades to full journal replay), a follower has no journal to fall
/// back on — so on a hash mismatch (the primary's schema evolved since
/// this follower booted) it **adopts** the schema embedded in the
/// checkpoint instead of erroring out permanently. Only a checkpoint
/// with no verifiable embedded schema is fatal.
fn decode_state(
    schema: &DirectorySchema,
    text: &str,
) -> Result<(ManagedDirectory, DirectorySchema), FollowerError> {
    let ckpt = Checkpoint::decode(text).map_err(|e| FollowerError::Bootstrap(e.to_string()))?;
    let expected = schema_hash(schema);
    let restore_schema = if ckpt.schema_hash == expected {
        schema.clone()
    } else if let Some(adopted) = ckpt.embedded_engine_schema() {
        adopted
    } else {
        return Err(FollowerError::Bootstrap(format!(
            "primary checkpoint schema hash {:016x} does not match follower schema {expected:016x} \
             and the checkpoint embeds no verifiable schema to adopt",
            ckpt.schema_hash
        )));
    };
    let base = DirectoryInstance::new(AttributeRegistry::default());
    let recovery =
        recover_with_checkpoint(restore_schema.clone(), base, Some(text), &Journal::empty())
            .map_err(|e| FollowerError::Bootstrap(e.to_string()))?;
    Ok((recovery.managed, restore_schema))
}
