//! A small synchronous client for the wire protocol — the counterpart
//! of [`crate::server`], used by the loopback test-suite, the
//! `bschema client` CLI subcommand, and the throughput benchmark.
//!
//! Every method is one request/response exchange on the connection;
//! server-side refusals come back as [`ClientError::Server`] with the
//! stable wire code, so callers can distinguish "the transaction was
//! rejected as illegal" from "the socket broke".

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::codec::{read_frame, write_frame, Frame, WireError, WireLimits};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// A frame could not be read or written.
    Wire(WireError),
    /// The server answered `ERR <code>`.
    Server {
        /// The stable wire code (`busy`, `illegal-instance`, …).
        code: String,
        /// The human-readable detail payload.
        detail: String,
    },
    /// The server answered something the client cannot interpret.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, detail } if detail.is_empty() => {
                write!(f, "server refused: {code}")
            }
            ClientError::Server { code, detail } => write!(f, "server refused: {code}: {detail}"),
            ClientError::Protocol(why) => write!(f, "protocol confusion: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// The server's refusal code, when this is a refusal.
    pub fn server_code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// What a committed `TXN` reported back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxReceipt {
    /// Operations applied.
    pub ops: usize,
    /// Directory size after the commit.
    pub len: usize,
    /// Shards the commit touched — 1 on a single-engine server (and
    /// when talking to an older server that omits the token), > 1 when
    /// the transaction took the cross-shard 2-phase path.
    pub shards: usize,
}

/// One connection to a bschema server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    limits: WireLimits,
    trace_label: Option<String>,
    trace_seq: u64,
}

impl Client {
    /// Connects, with sensible read/write timeouts (5s each).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            limits: WireLimits::default(),
            trace_label: None,
            trace_seq: 0,
        })
    }

    /// Enables trace-context stamping: every subsequent request carries
    /// a `tc=<label>-<seq>.0` header token, with `seq` a per-connection
    /// counter — deterministic, so tests can pin the exact ids a traced
    /// server will report back through its `TRACE` verb.
    pub fn with_trace_label(mut self, label: impl Into<String>) -> Self {
        self.trace_label = Some(label.into());
        self
    }

    /// The trace id the **next** stamped request will carry, or `None`
    /// when stamping is off.
    pub fn next_trace_id(&self) -> Option<String> {
        self.trace_label.as_ref().map(|label| format!("{label}-{}", self.trace_seq))
    }

    /// One request/response round trip. Returns the whole `OK` frame;
    /// `ERR` frames become [`ClientError::Server`].
    fn exchange(&mut self, tokens: &[&str], payload: &[u8]) -> Result<Frame, ClientError> {
        let stamp = self.next_trace_id().map(|id| bschema_obs::TraceContext::new(id).wire_token());
        let mut stamped: Vec<&str> = tokens.to_vec();
        if let Some(token) = &stamp {
            self.trace_seq += 1;
            stamped.push(token.as_str());
        }
        write_frame(&mut self.writer, &stamped, payload)?;
        let frame = read_frame(&mut self.reader, &self.limits)?
            .ok_or_else(|| ClientError::Protocol("server closed without responding".to_owned()))?;
        match frame.verb() {
            "OK" => Ok(frame),
            "ERR" => Err(ClientError::Server {
                code: frame.arg(1).unwrap_or("unknown").to_owned(),
                detail: frame.payload_str().unwrap_or("").to_owned(),
            }),
            other => Err(ClientError::Protocol(format!("unexpected status {other:?}"))),
        }
    }

    /// `BIND <name>`.
    pub fn bind(&mut self, name: &str) -> Result<(), ClientError> {
        self.exchange(&["BIND", name], b"").map(|_| ())
    }

    /// `PING` — returns the directory size.
    pub fn ping(&mut self) -> Result<usize, ClientError> {
        let frame = self.exchange(&["PING"], b"")?;
        parse_count(&frame, 2, "pong")
    }

    /// `SEARCH` — returns the matching entries as LDIF text.
    pub fn search(
        &mut self,
        base: Option<&str>,
        scope: &str,
        filter: &str,
        limit: Option<usize>,
    ) -> Result<String, ClientError> {
        let mut body = String::new();
        if let Some(base) = base {
            body.push_str(&format!("base: {base}\n"));
        }
        body.push_str(&format!("filter: {filter}\n"));
        if let Some(limit) = limit {
            body.push_str(&format!("limit: {limit}\n"));
        }
        let frame = self.exchange(&["SEARCH", scope], body.as_bytes())?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `TXN` — submits an LDIF change body as one atomic transaction.
    pub fn apply_ldif(&mut self, ldif: &str) -> Result<TxReceipt, ClientError> {
        let frame = self.exchange(&["TXN"], ldif.as_bytes())?;
        Ok(TxReceipt {
            ops: parse_count(&frame, 2, "committed")?,
            len: parse_count(&frame, 3, "committed")?,
            shards: frame.arg(4).and_then(|s| s.parse().ok()).unwrap_or(1),
        })
    }

    /// `MODIFY` — submits a pre-formatted modification body (`dn:` plus
    /// `add:`/`deletevalue:`/`deleteattr:`/`replace:` lines). Returns
    /// the directory size.
    pub fn modify_lines(&mut self, body: &str) -> Result<usize, ClientError> {
        let frame = self.exchange(&["MODIFY"], body.as_bytes())?;
        parse_count(&frame, 2, "modified")
    }

    /// `SEARCH ... explain` — EXPLAIN for a search: returns the result
    /// count and the evaluation-plan JSON instead of the entries.
    pub fn search_explain(
        &mut self,
        base: Option<&str>,
        scope: &str,
        filter: &str,
        limit: Option<usize>,
    ) -> Result<(usize, String), ClientError> {
        let mut body = String::new();
        if let Some(base) = base {
            body.push_str(&format!("base: {base}\n"));
        }
        body.push_str(&format!("filter: {filter}\n"));
        if let Some(limit) = limit {
            body.push_str(&format!("limit: {limit}\n"));
        }
        let frame = self.exchange(&["SEARCH", scope, "explain"], body.as_bytes())?;
        Ok((parse_count(&frame, 2, "explain")?, frame.payload_str()?.to_owned()))
    }

    /// `METRICS` — the server's recorder state as one JSON line.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        let frame = self.exchange(&["METRICS"], b"")?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `STATS` — counter/histogram deltas since the previous `STATS`
    /// scrape, as one JSON line.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        let frame = self.exchange(&["STATS"], b"")?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `TRACE` — the server's flight-recorder buffer (most recent +
    /// slowest completed request span trees) as one JSON line.
    pub fn trace_json(&mut self) -> Result<String, ClientError> {
        let frame = self.exchange(&["TRACE"], b"")?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `METRICS prom` — the registry in Prometheus-style text
    /// exposition.
    pub fn metrics_prom(&mut self) -> Result<String, ClientError> {
        let frame = self.exchange(&["METRICS", "prom"], b"")?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `HEALTH` — the server's aggregated health verdict as one JSON
    /// object.
    pub fn health_json(&mut self) -> Result<String, ClientError> {
        let frame = self.exchange(&["HEALTH"], b"")?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `CHECKPOINT` — forces a checkpoint + journal-truncate cycle.
    /// Returns the covered journal seq per shard.
    pub fn checkpoint(&mut self) -> Result<Vec<u64>, ClientError> {
        let frame = self.exchange(&["CHECKPOINT"], b"")?;
        let list = frame.arg(2).ok_or_else(|| {
            ClientError::Protocol(format!("malformed checkpoint response: {:?}", frame.tokens))
        })?;
        list.split(',')
            .map(|s| {
                s.parse::<u64>().map_err(|_| {
                    ClientError::Protocol(format!("bad checkpoint seq {s:?} in {list:?}"))
                })
            })
            .collect()
    }

    /// `SHIP` — bootstraps replication: returns the primary's fresh
    /// checkpoint as `(covered_seq, next_tx, encoded checkpoint)`.
    pub fn ship_bootstrap(&mut self) -> Result<(u64, u64, String), ClientError> {
        let frame = self.exchange(&["SHIP"], b"")?;
        let seq = parse_count(&frame, 2, "ship-ckpt")? as u64;
        let next_tx = parse_count(&frame, 3, "ship-ckpt")? as u64;
        Ok((seq, next_tx, frame.payload_str()?.to_owned()))
    }

    /// `SHIP <from-seq>` — ships the committed journal records from
    /// `from_seq` to the primary's cursor. Returns `(cursor, records)`;
    /// an empty record text means the follower is caught up. A server
    /// refusal with code `ship-gap` means the records were already
    /// compacted away — re-bootstrap.
    pub fn ship_tail(&mut self, from_seq: u64) -> Result<(u64, String), ClientError> {
        let frame = self.exchange(&["SHIP", &from_seq.to_string()], b"")?;
        let next = parse_count(&frame, 3, "ship")? as u64;
        Ok((next, frame.payload_str()?.to_owned()))
    }

    /// `WATCH <count>` — subscribes to the server's monitor stream and
    /// feeds each `TICK` frame `(seq, json)` to `on_tick` as it
    /// arrives. Returns the number of ticks received. `on_tick`
    /// returning `false` cancels the stream early (the connection is
    /// dropped — the server treats the hang-up as cancellation), so
    /// after an early cancel this client is consumed.
    pub fn watch(
        mut self,
        count: u64,
        mut on_tick: impl FnMut(u64, &str) -> bool,
    ) -> Result<usize, ClientError> {
        // Multi-frame verb: bypass `exchange` (one request, one reply).
        write_frame(&mut self.writer, &["WATCH", &count.to_string()], b"")?;
        let opening = read_frame(&mut self.reader, &self.limits)?
            .ok_or_else(|| ClientError::Protocol("server closed without responding".to_owned()))?;
        match (opening.verb(), opening.arg(1)) {
            ("OK", Some("watch")) => {}
            ("ERR", _) => {
                return Err(ClientError::Server {
                    code: opening.arg(1).unwrap_or("unknown").to_owned(),
                    detail: opening.payload_str().unwrap_or("").to_owned(),
                });
            }
            _ => {
                return Err(ClientError::Protocol(format!(
                    "unexpected watch opening: {:?}",
                    opening.tokens
                )))
            }
        }
        let mut received = 0usize;
        loop {
            // Ticks arrive at the monitor interval; wait past the read
            // timeout would cut a slow stream, so watchers poll with
            // the connection's own 5s budget per frame.
            let frame = read_frame(&mut self.reader, &self.limits)?
                .ok_or_else(|| ClientError::Protocol("server closed mid-watch".to_owned()))?;
            match frame.verb() {
                "TICK" => {
                    let seq =
                        frame.arg(1).and_then(|s| s.parse::<u64>().ok()).ok_or_else(|| {
                            ClientError::Protocol(format!("malformed TICK: {:?}", frame.tokens))
                        })?;
                    received += 1;
                    if !on_tick(seq, frame.payload_str()?) {
                        // Dropping the connection cancels server-side.
                        return Ok(received);
                    }
                }
                "OK" => return Ok(received),
                "ERR" => {
                    return Err(ClientError::Server {
                        code: frame.arg(1).unwrap_or("unknown").to_owned(),
                        detail: frame.payload_str().unwrap_or("").to_owned(),
                    })
                }
                other => {
                    return Err(ClientError::Protocol(format!("unexpected watch frame {other:?}")))
                }
            }
        }
    }

    /// `SCHEMA PROPOSE` — stages an evolution proposal. The payload is
    /// either a full schema-DSL replacement or a single
    /// `Evolution-step: <words>` line. Returns the proposal JSON.
    pub fn schema_propose(&mut self, payload: &str) -> Result<String, ClientError> {
        let frame = self.exchange(&["SCHEMA", "PROPOSE"], payload.as_bytes())?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `SCHEMA CHECK` — rechecks the staged proposal against a live
    /// snapshot, off the write path. Returns the recheck JSON; a
    /// refusal with code `schema-violates` carries the violation
    /// report naming the offending entries.
    pub fn schema_check(&mut self) -> Result<String, ClientError> {
        let frame = self.exchange(&["SCHEMA", "CHECK"], b"")?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `SCHEMA STATUS` — the current schema epoch, hash, and staged
    /// proposal (if any) as one JSON object.
    pub fn schema_status(&mut self) -> Result<String, ClientError> {
        let frame = self.exchange(&["SCHEMA", "STATUS"], b"")?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `SCHEMA COMMIT` — revalidates the staged proposal under the
    /// write lock and atomically cuts over to the new schema epoch.
    /// Returns the cutover JSON.
    pub fn schema_commit(&mut self) -> Result<String, ClientError> {
        let frame = self.exchange(&["SCHEMA", "COMMIT"], b"")?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `SCHEMA ABORT` — discards the staged proposal.
    pub fn schema_abort(&mut self) -> Result<String, ClientError> {
        let frame = self.exchange(&["SCHEMA", "ABORT"], b"")?;
        Ok(frame.payload_str()?.to_owned())
    }

    /// `SHUTDOWN` — asks the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.exchange(&["SHUTDOWN"], b"").map(|_| ())
    }

    /// `UNBIND` — closes the session politely.
    pub fn unbind(mut self) -> Result<(), ClientError> {
        self.exchange(&["UNBIND"], b"").map(|_| ())
    }
}

fn parse_count(frame: &Frame, arg: usize, what: &str) -> Result<usize, ClientError> {
    frame.arg(arg).and_then(|s| s.parse::<usize>().ok()).ok_or_else(|| {
        ClientError::Protocol(format!("malformed {what} response: {:?}", frame.tokens))
    })
}
