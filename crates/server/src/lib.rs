//! # bschema-server
//!
//! A concurrent directory-service frontend that enforces
//! bounding-schemas **on the wire**: every update arriving over a
//! socket goes through the paper's §4 incremental legality check inside
//! an atomic, journaled transaction, and every search is served from an
//! immutable snapshot of a **legal** instance. The server is the
//! deployment story for the reproduction — the point where the
//! schema stops being a library invariant and becomes a service
//! guarantee no client can subvert.
//!
//! Dependency-free by construction: `std::net` TCP, `std::thread`
//! workers, and a line/length-prefixed frame codec
//! ([`codec`]) standing in for LDAP's BER layer.
//!
//! * [`codec`] — the frame format and its resource limits.
//! * [`service`] — the shared [`DirectoryService`]: snapshot reads,
//!   serialized journaled writes, stable rejection codes.
//! * [`server`] — acceptor, bounded queue, worker pool, session loop,
//!   graceful drain.
//! * [`monitor`] — the health plane: tick retention, SLO burn alerts,
//!   and the shared state behind the `HEALTH`/`WATCH` verbs.
//! * [`replica`] — crash-consistent read replicas: checkpoint
//!   bootstrap + journal shipping over the `SHIP` verb.
//! * [`client`] — the matching synchronous client.
//!
//! ```no_run
//! use std::sync::Arc;
//! use bschema_core::paper::{white_pages_instance, white_pages_schema};
//! use bschema_core::ManagedDirectory;
//! use bschema_server::{Client, DirectoryService, Server, ServerConfig};
//!
//! let (dir, _) = white_pages_instance();
//! let managed = ManagedDirectory::with_instance(white_pages_schema(), dir).unwrap();
//! let service = Arc::new(DirectoryService::new(managed));
//! let handle = Server::spawn(service, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let hits = client.search(None, "sub", "(objectClass=person)", None).unwrap();
//! assert!(hits.contains("uid: laks"));
//! handle.shutdown();
//! handle.wait();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod monitor;
pub mod replica;
pub mod server;
pub mod service;

pub use client::{Client, ClientError, TxReceipt};
pub use codec::{Frame, WireError, WireLimits};
pub use monitor::{Monitor, MonitorConfig};
pub use replica::{Follower, FollowerError, SyncReport};
pub use server::{Server, ServerConfig, ServerHandle};
pub use service::{
    DirectoryService, ReplicationState, ServiceError, ServiceLimits, TxOutcome, SITE_SHIP_APPLY,
    SITE_SHIP_SERVE,
};
