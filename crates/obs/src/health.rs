//! The health model: per-signal thresholds, per-shard signal groups, a
//! single aggregated verdict, and SLO burn-rate tracking.
//!
//! The paper gives the directory a *correctness* criterion (§3
//! legality); this module gives the running service an *operability*
//! one. Signals are plain `(name, value, thresholds)` triples — the
//! server decides what to measure (journal growth, snapshot age, ◇c
//! ledger occupancy, 2PC rates, queue depth), this module decides how
//! to judge and render it, so the model is testable without a socket in
//! sight. The verdict is the worst status any signal reports.
//!
//! [`SloPolicy`] adds service-level objectives on top: a latency target
//! (p99) and an error budget (error rate). The burn rate is the ratio
//! of observed to budgeted; ≥ 1.0 means the budget is burning faster
//! than allowed, and [`AlertState`] edge-triggers exactly one alert per
//! excursion — fire on crossing into burn, clear on crossing back.

use crate::json;

/// A signal's judgement, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Within thresholds.
    Ok,
    /// Past the warn threshold.
    Warn,
    /// Past the crit threshold.
    Crit,
}

impl HealthStatus {
    /// The stable wire spelling (`ok`/`warn`/`crit`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Warn => "warn",
            HealthStatus::Crit => "crit",
        }
    }
}

/// Which direction of a signal is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Big values are bad (queue depth, latency, journal growth).
    HighBad,
    /// Small values are bad (◇c ledger occupancy).
    LowBad,
}

/// One measured health signal with its thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    /// Stable signal name (the pinned `HEALTH` vocabulary).
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Threshold for [`HealthStatus::Warn`].
    pub warn: f64,
    /// Threshold for [`HealthStatus::Crit`].
    pub crit: f64,
    /// Which side of the thresholds is unhealthy.
    pub sense: Sense,
}

impl Signal {
    /// A high-is-bad signal (the common case).
    pub fn high_bad(name: impl Into<String>, value: f64, warn: f64, crit: f64) -> Self {
        Signal { name: name.into(), value, warn, crit, sense: Sense::HighBad }
    }

    /// A low-is-bad signal.
    pub fn low_bad(name: impl Into<String>, value: f64, warn: f64, crit: f64) -> Self {
        Signal { name: name.into(), value, warn, crit, sense: Sense::LowBad }
    }

    /// Judges the value against the thresholds.
    pub fn status(&self) -> HealthStatus {
        match self.sense {
            Sense::HighBad if self.value >= self.crit => HealthStatus::Crit,
            Sense::HighBad if self.value >= self.warn => HealthStatus::Warn,
            Sense::LowBad if self.value <= self.crit => HealthStatus::Crit,
            Sense::LowBad if self.value <= self.warn => HealthStatus::Warn,
            _ => HealthStatus::Ok,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"value\":{},\"warn\":{},\"crit\":{},\"status\":{}}}",
            json::escape(&self.name),
            fmt_f64(self.value),
            fmt_f64(self.warn),
            fmt_f64(self.crit),
            json::escape(self.status().as_str()),
        )
    }
}

/// Renders an `f64` as JSON: integral values without the fraction, the
/// rest with enough digits to round-trip sensibly. Never `NaN`/`inf`
/// (clamped to 0 / a large sentinel) — the exposition must stay valid
/// JSON whatever the arithmetic did.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        return "0".to_owned();
    }
    if v.is_infinite() {
        return if v > 0.0 { "1e308".to_owned() } else { "-1e308".to_owned() };
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// One shard's signal group.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// The shard's signals.
    pub signals: Vec<Signal>,
}

impl ShardHealth {
    /// The worst status among this shard's signals.
    pub fn status(&self) -> HealthStatus {
        self.signals.iter().map(Signal::status).max().unwrap_or(HealthStatus::Ok)
    }

    fn to_json(&self) -> String {
        let signals: Vec<String> = self.signals.iter().map(Signal::to_json).collect();
        format!(
            "{{\"shard\":{},\"status\":{},\"signals\":[{}]}}",
            self.shard,
            json::escape(self.status().as_str()),
            signals.join(","),
        )
    }
}

/// The full health report: global signals, per-shard signal groups, and
/// caller-rendered extra sections (fitness gauge, SLO state, ledger)
/// spliced in verbatim.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Service-wide signals (queue depth, request p99, error rate, …).
    pub global: Vec<Signal>,
    /// Per-shard signal groups, in shard order.
    pub shards: Vec<ShardHealth>,
    /// Extra `"key":<json>` sections, pre-rendered by the caller. The
    /// value must be one valid JSON value.
    pub sections: Vec<(String, String)>,
}

impl HealthReport {
    /// The worst status across every signal in the report.
    pub fn verdict(&self) -> HealthStatus {
        self.global
            .iter()
            .map(Signal::status)
            .chain(self.shards.iter().map(ShardHealth::status))
            .max()
            .unwrap_or(HealthStatus::Ok)
    }

    /// Renders the whole report as one JSON object:
    /// `{"verdict":..,<sections..>,"signals":[..],"shards":[..]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"verdict\":{}", json::escape(self.verdict().as_str()));
        for (key, value) in &self.sections {
            out.push_str(&format!(",{}:{value}", json::escape(key)));
        }
        let global: Vec<String> = self.global.iter().map(Signal::to_json).collect();
        out.push_str(&format!(",\"signals\":[{}]", global.join(",")));
        let shards: Vec<String> = self.shards.iter().map(ShardHealth::to_json).collect();
        out.push_str(&format!(",\"shards\":[{}]}}", shards.join(",")));
        out
    }
}

/// A service-level objective: a p99 latency target and/or an error-rate
/// budget, parsed from the `serve --slo` spec.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloPolicy {
    /// Target p99 request latency in microseconds.
    pub p99_us: Option<u64>,
    /// Budgeted error rate (errors / requests, `0.0..=1.0`).
    pub err_rate: Option<f64>,
}

impl SloPolicy {
    /// Parses `p99=<duration>,err=<rate>` (either part optional, at
    /// least one required). Durations accept `us`/`ms`/`s` suffixes
    /// (bare numbers are µs); rates accept `0.01` or `1%`.
    pub fn parse(spec: &str) -> Result<SloPolicy, String> {
        let mut policy = SloPolicy::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            match key.trim() {
                "p99" => policy.p99_us = Some(parse_duration_us(value.trim())?),
                "err" => policy.err_rate = Some(parse_rate(value.trim())?),
                other => return Err(format!("unknown SLO key {other:?} (use p99=.., err=..)")),
            }
        }
        if policy.p99_us.is_none() && policy.err_rate.is_none() {
            return Err(format!("empty SLO spec {spec:?} (use p99=5ms,err=0.01)"));
        }
        Ok(policy)
    }

    /// The burn rate of the window `(p99_us, err_rate, requests)`
    /// against this policy: observed/budgeted, the worst over the
    /// configured objectives. 0.0 for an idle window (nothing observed,
    /// nothing burned).
    pub fn burn(&self, window_p99_us: u64, window_err_rate: f64, requests: u64) -> f64 {
        if requests == 0 {
            return 0.0;
        }
        let mut burn = 0.0f64;
        if let Some(target) = self.p99_us {
            if target > 0 {
                burn = burn.max(window_p99_us as f64 / target as f64);
            }
        }
        if let Some(budget) = self.err_rate {
            if budget > 0.0 {
                burn = burn.max(window_err_rate / budget);
            } else if window_err_rate > 0.0 {
                // Zero budget: any error is an immediate full burn.
                burn = burn.max(f64::INFINITY);
            }
        }
        burn
    }

    /// Renders the policy as JSON (`null`-free; absent objectives are
    /// omitted).
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        if let Some(p99) = self.p99_us {
            parts.push(format!("\"p99_us\":{p99}"));
        }
        if let Some(err) = self.err_rate {
            parts.push(format!("\"err_rate\":{}", fmt_f64(err)));
        }
        format!("{{{}}}", parts.join(","))
    }
}

fn parse_duration_us(s: &str) -> Result<u64, String> {
    let (digits, scale) = if let Some(d) = s.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        (s, 1)
    };
    digits
        .trim()
        .parse::<u64>()
        .map(|n| n.saturating_mul(scale))
        .map_err(|_| format!("bad duration {s:?} (use e.g. 5ms, 1500us, 2s)"))
}

fn parse_rate(s: &str) -> Result<f64, String> {
    let (digits, scale) = match s.strip_suffix('%') {
        Some(d) => (d, 0.01),
        None => (s, 1.0),
    };
    let rate = digits
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("bad rate {s:?} (use e.g. 0.01 or 1%)"))?
        * scale;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("rate {s:?} out of range 0..=1"));
    }
    Ok(rate)
}

/// What [`AlertState::observe`] reports about a burn-rate transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertEdge {
    /// The burn rate just crossed ≥ 1.0: raise the alert (once).
    Fired,
    /// The burn rate just dropped back below 1.0: the excursion ended.
    Cleared,
}

/// Edge-triggered alert latch: one `Fired` per excursion above the
/// budget, one `Cleared` when it ends — never a alert storm of one
/// event per burning tick.
#[derive(Debug, Default)]
pub struct AlertState {
    burning: bool,
    fired: u64,
}

impl AlertState {
    /// A quiet latch.
    pub fn new() -> Self {
        AlertState::default()
    }

    /// Feeds one window's burn rate; returns the edge, if this tick is
    /// one.
    pub fn observe(&mut self, burn: f64) -> Option<AlertEdge> {
        let burning = burn >= 1.0;
        match (self.burning, burning) {
            (false, true) => {
                self.burning = true;
                self.fired += 1;
                Some(AlertEdge::Fired)
            }
            (true, false) => {
                self.burning = false;
                Some(AlertEdge::Cleared)
            }
            _ => None,
        }
    }

    /// Whether the latch currently considers the budget burning.
    pub fn is_burning(&self) -> bool {
        self.burning
    }

    /// Total `Fired` edges over the latch's lifetime.
    pub fn fired(&self) -> u64 {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_thresholds_respect_sense() {
        let queue = Signal::high_bad("queue_depth_max", 10.0, 32.0, 56.0);
        assert_eq!(queue.status(), HealthStatus::Ok);
        assert_eq!(Signal::high_bad("q", 32.0, 32.0, 56.0).status(), HealthStatus::Warn);
        assert_eq!(Signal::high_bad("q", 99.0, 32.0, 56.0).status(), HealthStatus::Crit);
        // Low-is-bad: the ◇c ledger shape.
        assert_eq!(Signal::low_bad("ledger_min", 5.0, 1.0, 0.0).status(), HealthStatus::Ok);
        assert_eq!(Signal::low_bad("ledger_min", 1.0, 1.0, 0.0).status(), HealthStatus::Warn);
        assert_eq!(Signal::low_bad("ledger_min", 0.0, 1.0, 0.0).status(), HealthStatus::Crit);
    }

    #[test]
    fn report_verdict_is_worst_and_json_is_valid() {
        let mut report = HealthReport {
            global: vec![Signal::high_bad("err_rate", 0.0, 0.01, 0.05)],
            shards: vec![
                ShardHealth {
                    shard: 0,
                    signals: vec![Signal::high_bad("journal_bytes", 10.0, 1e6, 64e6)],
                },
                ShardHealth {
                    shard: 1,
                    signals: vec![Signal::high_bad("journal_bytes", 2e6, 1e6, 64e6)],
                },
            ],
            sections: vec![("fitness".to_owned(), "{\"committed\":4}".to_owned())],
        };
        assert_eq!(report.verdict(), HealthStatus::Warn, "shard 1 warns");
        let json = report.to_json();
        assert!(crate::json::is_valid(&json), "{json}");
        let v = crate::json::Value::parse(&json).unwrap();
        assert_eq!(v.get("verdict").unwrap().as_str(), Some("warn"));
        assert_eq!(v.path("fitness.committed").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("shards").unwrap().items().unwrap().len(), 2);
        assert_eq!(
            v.get("shards").unwrap().idx(1).unwrap().get("status").unwrap().as_str(),
            Some("warn")
        );
        // Escalate a global signal to crit: the verdict follows.
        report.global.push(Signal::high_bad("burn", 3.0, 0.5, 1.0));
        assert_eq!(report.verdict(), HealthStatus::Crit);
        // An empty report is healthy by definition.
        assert_eq!(HealthReport::default().verdict(), HealthStatus::Ok);
        assert!(crate::json::is_valid(&HealthReport::default().to_json()));
    }

    #[test]
    fn slo_spec_parses_and_rejects() {
        let slo = SloPolicy::parse("p99=5ms,err=0.01").unwrap();
        assert_eq!(slo.p99_us, Some(5_000));
        assert_eq!(slo.err_rate, Some(0.01));
        assert_eq!(SloPolicy::parse("p99=1500us").unwrap().p99_us, Some(1_500));
        assert_eq!(SloPolicy::parse("p99=2s").unwrap().p99_us, Some(2_000_000));
        assert_eq!(SloPolicy::parse("p99=750").unwrap().p99_us, Some(750));
        assert_eq!(SloPolicy::parse("err=1%").unwrap().err_rate, Some(0.01));
        for bad in ["", "p99=", "p99=fast", "err=2.0", "err=-1", "nope=1", "p99"] {
            assert!(SloPolicy::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        assert!(crate::json::is_valid(&slo.to_json()));
    }

    #[test]
    fn burn_rate_is_observed_over_budgeted() {
        let slo = SloPolicy::parse("p99=1ms,err=0.1").unwrap();
        // Idle window burns nothing.
        assert_eq!(slo.burn(0, 0.0, 0), 0.0);
        // Healthy: p99 at half target, no errors.
        assert!(slo.burn(500, 0.0, 100) < 1.0);
        // Latency burn: p99 at 2× target.
        assert!((slo.burn(2_000, 0.0, 100) - 2.0).abs() < 1e-9);
        // Error burn: 30% errors against a 10% budget.
        assert!((slo.burn(0, 0.3, 100) - 3.0).abs() < 1e-9);
        // The worst objective dominates.
        assert!((slo.burn(2_000, 0.5, 100) - 5.0).abs() < 1e-9);
        // A zero error budget burns infinitely on any error.
        let strict = SloPolicy { p99_us: None, err_rate: Some(0.0) };
        assert!(strict.burn(0, 0.01, 100).is_infinite());
        assert_eq!(strict.burn(0, 0.0, 100), 0.0);
    }

    #[test]
    fn alert_latch_fires_once_per_excursion() {
        let mut latch = AlertState::new();
        assert_eq!(latch.observe(0.2), None);
        assert_eq!(latch.observe(1.5), Some(AlertEdge::Fired));
        // Still burning: no storm.
        assert_eq!(latch.observe(2.0), None);
        assert_eq!(latch.observe(7.0), None);
        assert!(latch.is_burning());
        assert_eq!(latch.observe(0.3), Some(AlertEdge::Cleared));
        assert_eq!(latch.observe(0.1), None);
        // A second excursion fires a second alert.
        assert_eq!(latch.observe(1.1), Some(AlertEdge::Fired));
        assert_eq!(latch.fired(), 2);
    }
}
