//! Minimal JSON helpers: string escaping for the exporters, a
//! dependency-free validity checker used by tests and the CLI test
//! suite to guarantee the machine-readable output actually parses, and
//! a small [`Value`] reader so consumers (the `bschema top` renderer,
//! CI lint scripts, the loopback suite) can pick fields out of
//! `HEALTH`/`WATCH`/`METRICS` payloads without a dependency.

/// Renders `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Whether `text` is one complete, well-formed JSON value.
pub fn is_valid(text: &str) -> bool {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    if !p.value() {
        return false;
    }
    p.skip_ws();
    p.pos == p.bytes.len()
}

/// Recursive-descent JSON reader over raw bytes (strings are validated
/// escape-wise; non-ASCII passes through untouched).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn object(&mut self) -> bool {
        self.pos += 1; // '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.string() {
                return false;
            }
            self.skip_ws();
            if self.bump() != Some(b':') {
                return false;
            }
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return true,
                _ => return false,
            }
        }
    }

    fn array(&mut self) -> bool {
        self.pos += 1; // '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return true,
                _ => return false,
            }
        }
    }

    fn string(&mut self) -> bool {
        if self.bump() != Some(b'"') {
            return false;
        }
        while let Some(b) = self.bump() {
            match b {
                b'"' => return true,
                b'\\' => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|h| h.is_ascii_hexdigit()) {
                                return false;
                            }
                        }
                    }
                    _ => return false,
                },
                0x00..=0x1f => return false, // raw control character
                _ => {}
            }
        }
        false // unterminated
    }

    fn digits(&mut self) -> bool {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos > start
    }

    fn number(&mut self) -> bool {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                self.digits();
            }
            _ => return false,
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !self.digits() {
                return false;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.digits() {
                return false;
            }
        }
        true
    }
}

/// A parsed JSON value — the read side of the exporters. Object keys
/// keep their document order (no map), so round-trips stay faithful to
/// the deterministic renderings the registry produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; the exporters only emit values that
    /// fit).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document key order.
    Obj(Vec<(String, Value)>),
}

/// Nesting bound for [`Value::parse`] — generous for our own exporters,
/// fatal for adversarial deep nesting.
const MAX_VALUE_DEPTH: usize = 128;

impl Value {
    /// Parses one complete JSON document. `None` on any malformation —
    /// same grammar as [`is_valid`].
    pub fn parse(text: &str) -> Option<Value> {
        let mut p = ValueParser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Member `key` of an object (first occurrence), else `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-separated member path: `v.path("window.p99_us")`.
    pub fn path(&self, path: &str) -> Option<&Value> {
        path.split('.').try_fold(self, |v, key| v.get(key))
    }

    /// Element `i` of an array, else `None`.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn items(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in document order, when this is an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The number, when this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64` (floor), when this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// The building twin of [`Parser`]: same grammar, but materialises a
/// [`Value`] tree (with string escapes decoded) instead of answering
/// yes/no.
struct ValueParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl ValueParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Option<Value> {
        if depth > MAX_VALUE_DEPTH {
            return None;
        }
        match self.peek()? {
            b'{' => self.object(depth),
            b'[' => self.array(depth),
            b'"' => self.string().map(Value::Str),
            b't' => self.literal("true").then_some(Value::Bool(true)),
            b'f' => self.literal("false").then_some(Value::Bool(false)),
            b'n' => self.literal("null").then_some(Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self, depth: usize) -> Option<Value> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return None;
            }
            self.pos += 1;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Some(Value::Obj(members));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self, depth: usize) -> Option<Value> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Some(Value::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.peek() != Some(b'"') {
            return None;
        }
        let start = self.pos;
        // Reuse the validator to find the closing quote and vet escapes,
        // then decode over the validated slice.
        let mut v = Parser { bytes: self.bytes, pos: start };
        if !v.string() {
            return None;
        }
        let body = std::str::from_utf8(&self.bytes[start + 1..v.pos - 1]).ok()?;
        self.pos = v.pos;
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    // Lone surrogates decode to the replacement char; the
                    // exporters never emit them.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                _ => return None,
            }
        }
        Some(out)
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        let mut v = Parser { bytes: self.bytes, pos: start };
        if !v.number() {
            return None;
        }
        self.pos = v.pos;
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_validation() {
        for s in ["plain", "with \"quotes\"", "line\nbreak\ttab", "back\\slash", "\u{1}ctl", "µs"]
        {
            let lit = escape(s);
            assert!(is_valid(&lit), "escape({s:?}) = {lit} must be valid");
        }
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn accepts_well_formed_json() {
        for text in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "0",
            "\"hi\"",
            r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":1.5e-2}"#,
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            assert!(is_valid(text), "{text} should be valid");
        }
    }

    #[test]
    fn rejects_malformed_json() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "\"raw\ncontrol\"",
        ] {
            assert!(!is_valid(text), "{text:?} should be invalid");
        }
    }

    #[test]
    fn value_parses_what_the_exporters_emit() {
        let v = Value::parse(
            r#"{"counters":{"a.b":3},"histograms":{"h":{"count":2,"p99":7}},"ok":true,"none":null,"arr":[1,"x"]}"#,
        )
        .unwrap();
        assert_eq!(v.path("counters.a.b"), None, "dotted keys are literal, not paths");
        assert_eq!(v.get("counters").unwrap().get("a.b").unwrap().as_u64(), Some(3));
        assert_eq!(v.path("histograms.h.p99").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("arr").unwrap().idx(1).unwrap().as_str(), Some("x"));
        assert_eq!(v.get("arr").unwrap().items().unwrap().len(), 2);
        // Escapes decode.
        let s = Value::parse(r#""a\"b\nµ""#).unwrap();
        assert_eq!(s.as_str(), Some("a\"b\nµ"));
        // Negative and fractional numbers.
        assert_eq!(Value::parse("-1.5e1").unwrap().as_f64(), Some(-15.0));
        assert_eq!(Value::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn value_rejects_what_is_valid_rejects() {
        for text in ["", "{", "[1,]", "{\"a\":}", "{} extra", "\"unterminated", "01"] {
            assert_eq!(Value::parse(text), None, "{text:?}");
        }
        // Depth bound: a 200-deep array is refused, not a stack overflow.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(Value::parse(&deep), None);
    }

    #[test]
    fn value_round_trips_escaped_keys() {
        let doc = format!("{{{}:1}}", escape("key with \"quotes\" and\nnewline"));
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.get("key with \"quotes\" and\nnewline").unwrap().as_u64(), Some(1));
    }
}
