//! Minimal JSON helpers: string escaping for the exporters and a
//! dependency-free validity checker used by tests and the CLI test
//! suite to guarantee the machine-readable output actually parses.

/// Renders `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Whether `text` is one complete, well-formed JSON value.
pub fn is_valid(text: &str) -> bool {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    if !p.value() {
        return false;
    }
    p.skip_ws();
    p.pos == p.bytes.len()
}

/// Recursive-descent JSON reader over raw bytes (strings are validated
/// escape-wise; non-ASCII passes through untouched).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn object(&mut self) -> bool {
        self.pos += 1; // '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.string() {
                return false;
            }
            self.skip_ws();
            if self.bump() != Some(b':') {
                return false;
            }
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return true,
                _ => return false,
            }
        }
    }

    fn array(&mut self) -> bool {
        self.pos += 1; // '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return true,
                _ => return false,
            }
        }
    }

    fn string(&mut self) -> bool {
        if self.bump() != Some(b'"') {
            return false;
        }
        while let Some(b) = self.bump() {
            match b {
                b'"' => return true,
                b'\\' => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|h| h.is_ascii_hexdigit()) {
                                return false;
                            }
                        }
                    }
                    _ => return false,
                },
                0x00..=0x1f => return false, // raw control character
                _ => {}
            }
        }
        false // unterminated
    }

    fn digits(&mut self) -> bool {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos > start
    }

    fn number(&mut self) -> bool {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                self.digits();
            }
            _ => return false,
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !self.digits() {
                return false;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.digits() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_validation() {
        for s in ["plain", "with \"quotes\"", "line\nbreak\ttab", "back\\slash", "\u{1}ctl", "µs"]
        {
            let lit = escape(s);
            assert!(is_valid(&lit), "escape({s:?}) = {lit} must be valid");
        }
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn accepts_well_formed_json() {
        for text in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "0",
            "\"hi\"",
            r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":1.5e-2}"#,
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            assert!(is_valid(text), "{text} should be valid");
        }
    }

    #[test]
    fn rejects_malformed_json() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a':1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "\"raw\ncontrol\"",
        ] {
            assert!(!is_valid(text), "{text:?} should be invalid");
        }
    }
}
