//! The flight recorder: a bounded buffer of completed request span
//! trees.
//!
//! Per-process counters say *that* requests were slow; the flight
//! recorder keeps the evidence for *which* and *why*: the N most
//! **recent** and the N **slowest** completed requests, each as a full
//! [`SpanNode`] tree with the caller's trace id attached. Memory is
//! bounded by `2 × capacity` records no matter how long the server
//! runs, and recording is one short mutex hold, so it is safe to leave
//! on in production — the server's `TRACE` verb serves the buffer as
//! JSON.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::json;
use crate::span::SpanNode;

/// One completed request, as retained by the [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Monotonic admission number (process-wide order of completion).
    pub seq: u64,
    /// The caller's trace id (from the wire `tc=` token), or the
    /// server-assigned fallback for unstamped requests.
    pub trace_id: String,
    /// The request verb (`TXN`, `SEARCH`, ...).
    pub verb: String,
    /// `ok`, or the stable rejection code (`rolled-back`, `limit`, ...).
    pub status: String,
    /// End-to-end duration of the request root span, microseconds.
    pub dur_us: u64,
    /// The completed span tree rooted at `server.request`.
    pub root: SpanNode,
}

impl FlightRecord {
    /// Renders the record as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"trace_id\":{},\"verb\":{},\"status\":{},\"dur_us\":{},\"spans\":{}}}",
            self.seq,
            json::escape(&self.trace_id),
            json::escape(&self.verb),
            json::escape(&self.status),
            self.dur_us,
            self.root.to_json()
        )
    }
}

#[derive(Debug, Default)]
struct FlightInner {
    recent: VecDeque<FlightRecord>,
    slowest: Vec<FlightRecord>,
    seq: u64,
}

/// A bounded ring buffer retaining the most recent and the slowest
/// completed request traces.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// A recorder keeping up to `capacity` recent and `capacity`
    /// slowest records (capacity 0 is clamped to 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { capacity: capacity.max(1), inner: Mutex::new(FlightInner::default()) }
    }

    /// The per-list capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a completed request; returns its sequence number.
    pub fn record(
        &self,
        trace_id: impl Into<String>,
        verb: impl Into<String>,
        status: impl Into<String>,
        dur_us: u64,
        root: SpanNode,
    ) -> u64 {
        let mut inner = self.inner.lock().expect("flight mutex poisoned");
        let seq = inner.seq;
        inner.seq += 1;
        let record = FlightRecord {
            seq,
            trace_id: trace_id.into(),
            verb: verb.into(),
            status: status.into(),
            dur_us,
            root,
        };
        if inner.recent.len() == self.capacity {
            inner.recent.pop_front();
        }
        inner.recent.push_back(record.clone());
        inner.slowest.push(record);
        // Slowest first; equal durations keep completion order so the
        // buffer contents are deterministic.
        inner.slowest.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.seq.cmp(&b.seq)));
        inner.slowest.truncate(self.capacity);
        seq
    }

    /// Total requests admitted so far (including evicted ones).
    pub fn admitted(&self) -> u64 {
        self.inner.lock().expect("flight mutex poisoned").seq
    }

    /// The retained most-recent records, oldest first.
    pub fn recent(&self) -> Vec<FlightRecord> {
        self.inner.lock().expect("flight mutex poisoned").recent.iter().cloned().collect()
    }

    /// The retained slowest records, slowest first.
    pub fn slowest(&self) -> Vec<FlightRecord> {
        self.inner.lock().expect("flight mutex poisoned").slowest.clone()
    }

    /// Renders the whole buffer as one JSON object:
    /// `{"admitted":N,"recent":[...],"slowest":[...]}`.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().expect("flight mutex poisoned");
        let mut out = format!("{{\"admitted\":{},\"recent\":[", inner.seq);
        for (i, rec) in inner.recent.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&rec.to_json());
        }
        out.push_str("],\"slowest\":[");
        for (i, rec) in inner.slowest.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&rec.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &'static str, dur_us: u64) -> SpanNode {
        SpanNode { name, ord: 0, start_us: 0, dur_us: Some(dur_us), children: Vec::new() }
    }

    #[test]
    fn keeps_recent_and_slowest_within_capacity() {
        let fr = FlightRecorder::new(2);
        // Durations: 10, 50, 20, 40, 30 — slowest two are 50 and 40.
        for (i, dur) in [10u64, 50, 20, 40, 30].into_iter().enumerate() {
            fr.record(format!("t-{i}"), "PING", "ok", dur, leaf("server.request", dur));
        }
        assert_eq!(fr.admitted(), 5);
        let recent: Vec<u64> = fr.recent().iter().map(|r| r.dur_us).collect();
        assert_eq!(recent, [40, 30]);
        let slowest: Vec<u64> = fr.slowest().iter().map(|r| r.dur_us).collect();
        assert_eq!(slowest, [50, 40]);
        assert_eq!(fr.slowest()[0].trace_id, "t-1");
    }

    #[test]
    fn equal_durations_keep_completion_order() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(format!("t-{i}"), "PING", "ok", 7, leaf("server.request", 7));
        }
        let seqs: Vec<u64> = fr.slowest().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
    }

    #[test]
    fn json_is_valid_and_carries_the_tree() {
        let fr = FlightRecorder::new(4);
        let root = SpanNode {
            name: "server.request",
            ord: 0,
            start_us: 0,
            dur_us: Some(9),
            children: vec![leaf("legality.check", 5)],
        };
        fr.record("cli-0", "TXN", "rolled-back", 9, root);
        let text = fr.to_json();
        assert!(json::is_valid(&text), "{text}");
        assert!(text.contains("\"trace_id\":\"cli-0\""), "{text}");
        assert!(text.contains("\"status\":\"rolled-back\""), "{text}");
        assert!(text.contains("\"name\":\"legality.check\""), "{text}");
        assert!(text.starts_with("{\"admitted\":1,\"recent\":["), "{text}");
    }

    #[test]
    fn concurrent_recording_admits_everything() {
        let fr = FlightRecorder::new(8);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let fr = &fr;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        fr.record("t", "PING", "ok", i, leaf("server.request", i));
                    }
                });
            }
        });
        assert_eq!(fr.admitted(), 200);
        assert_eq!(fr.recent().len(), 8);
        let slowest: Vec<u64> = fr.slowest().iter().map(|r| r.dur_us).collect();
        assert_eq!(slowest, [49, 49, 49, 49, 48, 48, 48, 48]);
    }
}
