//! # bschema-obs
//!
//! Observability for the bounding-schema engines: a hierarchical span
//! tracer with monotonic timing, a metrics registry (counters +
//! histograms), and the [`Probe`] trait the engines are instrumented
//! against.
//!
//! The paper's core claims are complexity bounds — Theorem 3.1's
//! O(|Q|·|D|) legality test, the Figure 5 Δ-query incremental checks,
//! and the polynomial consistency closure. This crate makes the
//! *operation counts* behind those bounds first-class: entries
//! content-checked, Figure 4 queries evaluated and their result sizes,
//! index reuses through the Cow evaluation path, Δ-queries per Figure 5
//! row, inference-rule firings, and parallel chunk count/timing.
//!
//! Like `bschema-parallel`, the crate is dependency-free. The design
//! splits three concerns:
//!
//! * [`Probe`] — the instrumentation *interface* the engines call. Every
//!   method has a no-op default body, and [`noop()`] returns a shared
//!   static no-op instance, so an uninstrumented checker pays one
//!   virtual `enabled()` test (predictably false) on the hot paths and
//!   nothing else.
//! * [`Tracer`] — hierarchical spans with thread-safe collection.
//!   Workers on parallel chunks record spans concurrently; the
//!   reconstructed tree is deterministic regardless of thread count
//!   because siblings are ordered by a caller-supplied ordinal, not by
//!   completion time.
//! * [`MetricsRegistry`] — named counters and log-bucketed quantile
//!   histograms (p50/p90/p99, mergeable, delta-able for scrape loops)
//!   behind `BTreeMap`s, so every rendering is deterministically
//!   ordered.
//!
//! [`Recorder`] bundles a tracer and a registry into a ready-made
//! `Probe` implementation with text and JSON exporters.
//!
//! On top of these sit the request-telemetry pieces the wire server
//! uses: [`TraceContext`] (a deterministic, wire-propagated trace
//! identity), [`RequestTrace`] (a per-request probe that re-parents
//! engine span trees under one request root while forwarding metrics
//! to the shared registry), and [`FlightRecorder`] (a bounded buffer
//! of the most recent + slowest completed request span trees).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod flight;
mod fmt;
mod health;
mod metrics;
mod span;
mod timeseries;
mod trace;

pub use flight::{FlightRecord, FlightRecorder};
pub use fmt::fmt_us;
pub use health::{
    AlertEdge, AlertState, HealthReport, HealthStatus, Sense, ShardHealth, Signal, SloPolicy,
};
pub use metrics::{prom_name, Histogram, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanId, SpanNode, Tracer, NO_SPAN};
pub use timeseries::{TickPoint, TimeSeries};
pub use trace::{RequestTrace, TraceContext};

/// The instrumentation interface threaded through the engines.
///
/// Every method has a no-op default, so implementors override only what
/// they collect and instrumentation sites stay unconditional. Hot loops
/// should gate bulk work on [`enabled`](Probe::enabled):
///
/// ```
/// # use bschema_obs::{noop, Probe};
/// # let probe = noop();
/// # let entries: &[u8] = &[];
/// if probe.enabled() {
///     probe.add("legality.entries_content_checked", entries.len() as u64);
/// }
/// ```
///
/// The `Debug + Sync` supertraits let engine structs that hold a
/// `&dyn Probe` keep their derived `Debug`/`Clone`/`Copy` impls and
/// share the probe across scoped worker threads.
pub trait Probe: std::fmt::Debug + Sync {
    /// Whether this probe records anything. `false` (the default) lets
    /// instrumented code skip preparing labels or timings entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// Increments the counter `key` by `by`.
    fn add(&self, key: &str, by: u64) {
        let _ = (key, by);
    }

    /// Increments the counter `key.label` by `by` — for per-row /
    /// per-rule families like `incremental.delta_query.require_parent`.
    fn add_labeled(&self, key: &str, label: &str, by: u64) {
        let _ = (key, label, by);
    }

    /// Records `value` into the histogram `key`.
    fn observe(&self, key: &str, value: u64) {
        let _ = (key, value);
    }

    /// Opens a span named `name` under `parent` ([`NO_SPAN`] for a
    /// root). `ord` fixes the span's position among its siblings, so
    /// trees reconstructed from parallel workers are deterministic —
    /// pass the chunk/job index, not a timestamp.
    fn span_start(&self, parent: SpanId, name: &'static str, ord: u64) -> SpanId {
        let _ = (parent, name, ord);
        NO_SPAN
    }

    /// Closes a span opened by [`span_start`](Probe::span_start).
    /// Closing [`NO_SPAN`] is a no-op.
    fn span_end(&self, span: SpanId) {
        let _ = span;
    }
}

/// The do-nothing probe: every method keeps its default body.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

static NOOP: NoopProbe = NoopProbe;

/// The shared static no-op probe — the default wired into every engine.
pub fn noop() -> &'static dyn Probe {
    &NOOP
}

/// A [`Probe`] that records everything: spans into a [`Tracer`],
/// counters and histograms into a [`MetricsRegistry`].
#[derive(Debug, Default)]
pub struct Recorder {
    tracer: Tracer,
    metrics: MetricsRegistry,
}

impl Recorder {
    /// A fresh recorder (empty tracer + registry).
    pub fn new() -> Self {
        Recorder::default()
    }

    /// The collected spans.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The collected counters and histograms.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Renders the span forest as an indented text tree.
    pub fn trace_text(&self) -> String {
        self.tracer.render_text()
    }

    /// Renders the counter table + histogram summary as text.
    pub fn metrics_text(&self) -> String {
        self.metrics.render_text()
    }

    /// Everything as one line of JSON:
    /// `{"counters":{...},"histograms":{...},"spans":[...]}`.
    pub fn to_json(&self) -> String {
        let m = self.metrics.to_json();
        // Splice the spans into the metrics object (which always renders
        // as `{"counters":...,"histograms":...}`).
        let body = m.strip_suffix('}').expect("metrics JSON is an object");
        format!("{body},\"spans\":{}}}", self.tracer.to_json())
    }
}

impl Probe for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, key: &str, by: u64) {
        self.metrics.add(key, by);
    }

    fn add_labeled(&self, key: &str, label: &str, by: u64) {
        self.metrics.add_labeled(key, label, by);
    }

    fn observe(&self, key: &str, value: u64) {
        self.metrics.observe(key, value);
    }

    fn span_start(&self, parent: SpanId, name: &'static str, ord: u64) -> SpanId {
        self.tracer.start(parent, name, ord)
    }

    fn span_end(&self, span: SpanId) {
        self.tracer.end(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_inert() {
        let p = noop();
        assert!(!p.enabled());
        p.add("x", 1);
        p.add_labeled("x", "y", 1);
        p.observe("x", 1);
        let s = p.span_start(NO_SPAN, "root", 0);
        assert_eq!(s, NO_SPAN);
        p.span_end(s);
    }

    #[test]
    fn recorder_collects_through_the_trait() {
        let r = Recorder::new();
        let p: &dyn Probe = &r;
        assert!(p.enabled());
        p.add("queries", 2);
        p.add("queries", 3);
        p.add_labeled("rule", "path", 1);
        p.observe("size", 7);
        let root = p.span_start(NO_SPAN, "check", 0);
        let child = p.span_start(root, "content", 0);
        p.span_end(child);
        p.span_end(root);
        assert_eq!(r.metrics().counter("queries"), 5);
        assert_eq!(r.metrics().counter("rule.path"), 1);
        assert_eq!(r.metrics().histogram("size").unwrap().count(), 1);
        let tree = r.tracer().tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].shape(), "check(content)");
    }

    #[test]
    fn recorder_json_is_valid_and_single_line() {
        let r = Recorder::new();
        r.add("a\"b", 1);
        r.observe("h", 3);
        let root = r.span_start(NO_SPAN, "root", 0);
        r.span_end(root);
        let text = r.to_json();
        assert!(json::is_valid(&text), "invalid JSON: {text}");
        assert!(!text.contains('\n'));
        assert!(text.contains("\"spans\""));
    }
}
