//! Hierarchical spans with monotonic timing and thread-safe collection.
//!
//! Spans are appended to one mutex-guarded arena; a [`SpanId`] is the
//! arena index. Parallel workers open spans concurrently, so arena
//! order is nondeterministic — the reconstructed [`tree`](Tracer::tree)
//! is made deterministic by stable-sorting siblings on the
//! caller-supplied ordinal (chunk index, phase number, ...), with the
//! arena sequence only breaking ties among equal ordinals.

use std::sync::Mutex;
use std::time::Instant;

use crate::fmt::fmt_us;
use crate::json;

/// Handle to a span in a [`Tracer`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(usize);

/// The "no span" sentinel: the parent of root spans, and what a no-op
/// probe returns. Ending it is a no-op.
pub const NO_SPAN: SpanId = SpanId(usize::MAX);

/// One recorded span.
#[derive(Debug, Clone)]
struct SpanRec {
    name: &'static str,
    parent: usize,
    ord: u64,
    start_us: u64,
    dur_us: Option<u64>,
}

/// A thread-safe span collector with one monotonic origin.
#[derive(Debug)]
pub struct Tracer {
    origin: Instant,
    spans: Mutex<Vec<SpanRec>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer { origin: Instant::now(), spans: Mutex::new(Vec::new()) }
    }
}

impl Tracer {
    /// An empty tracer whose clock starts now.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Opens a span under `parent` ([`NO_SPAN`] for a root) with sibling
    /// ordinal `ord`.
    pub fn start(&self, parent: SpanId, name: &'static str, ord: u64) -> SpanId {
        let start_us = self.origin.elapsed().as_micros() as u64;
        let mut spans = self.spans.lock().expect("tracer mutex poisoned");
        spans.push(SpanRec { name, parent: parent.0, ord, start_us, dur_us: None });
        SpanId(spans.len() - 1)
    }

    /// Records an already-elapsed interval as a closed span: the span is
    /// backdated so it *ends* now and lasted `dur_us`. Used for waits
    /// measured outside the tracer's scope — e.g. the server backdates a
    /// connection's queue wait once a worker picks it up.
    pub fn record_with_duration(
        &self,
        parent: SpanId,
        name: &'static str,
        ord: u64,
        dur_us: u64,
    ) -> SpanId {
        let now = self.origin.elapsed().as_micros() as u64;
        let mut spans = self.spans.lock().expect("tracer mutex poisoned");
        spans.push(SpanRec {
            name,
            parent: parent.0,
            ord,
            start_us: now.saturating_sub(dur_us),
            dur_us: Some(dur_us),
        });
        SpanId(spans.len() - 1)
    }

    /// Closes `span`, recording its duration. Closing [`NO_SPAN`] (or an
    /// already-closed span) is a no-op.
    pub fn end(&self, span: SpanId) {
        if span == NO_SPAN {
            return;
        }
        let now = self.origin.elapsed().as_micros() as u64;
        let mut spans = self.spans.lock().expect("tracer mutex poisoned");
        if let Some(rec) = spans.get_mut(span.0) {
            if rec.dur_us.is_none() {
                rec.dur_us = Some(now.saturating_sub(rec.start_us));
            }
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("tracer mutex poisoned").len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstructs the span forest. Root spans (parent [`NO_SPAN`]) come
    /// in recording order; siblings everywhere are stable-sorted by their
    /// ordinal, so the shape is independent of worker scheduling.
    pub fn tree(&self) -> Vec<SpanNode> {
        let spans = self.spans.lock().expect("tracer mutex poisoned").clone();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, rec) in spans.iter().enumerate() {
            if rec.parent == NO_SPAN.0 {
                roots.push(i);
            } else if let Some(list) = children.get_mut(rec.parent) {
                list.push(i);
            }
        }
        fn build(i: usize, spans: &[SpanRec], children: &[Vec<usize>]) -> SpanNode {
            let mut kids: Vec<usize> = children[i].clone();
            // Arena order breaks ties among equal ordinals (stable sort).
            kids.sort_by_key(|&k| spans[k].ord);
            SpanNode {
                name: spans[i].name,
                ord: spans[i].ord,
                start_us: spans[i].start_us,
                dur_us: spans[i].dur_us,
                children: kids.into_iter().map(|k| build(k, spans, children)).collect(),
            }
        }
        roots.sort_by_key(|&r| spans[r].ord);
        roots.into_iter().map(|r| build(r, &spans, &children)).collect()
    }

    /// Renders the forest as an indented text tree with durations.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for root in self.tree() {
            out.push_str(&root.render_text());
        }
        out
    }

    /// Renders the forest as a JSON array of nested span objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, root) in self.tree().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&root.to_json());
        }
        out.push(']');
        out
    }
}

/// A reconstructed span with its (ordinal-sorted) children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name as passed to [`Tracer::start`].
    pub name: &'static str,
    /// Sibling ordinal as passed to [`Tracer::start`].
    pub ord: u64,
    /// Microseconds from the tracer's origin to the span opening.
    pub start_us: u64,
    /// Span duration in microseconds; `None` if never closed.
    pub dur_us: Option<u64>,
    /// Child spans, ordinal-sorted.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A timing-free rendering of the subtree shape —
    /// `name(child1,child2(grandchild))` — for deterministic assertions.
    pub fn shape(&self) -> String {
        if self.children.is_empty() {
            return self.name.to_owned();
        }
        let inner: Vec<String> = self.children.iter().map(SpanNode::shape).collect();
        format!("{}({})", self.name, inner.join(","))
    }

    /// Renders this subtree as one nested JSON object — the same shape
    /// [`Tracer::to_json`] emits per root, reusable for detached trees
    /// (the flight recorder stores `SpanNode`s, not tracers).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"name\":{},\"ord\":{},\"start_us\":{},\"dur_us\":{},\"children\":[",
            json::escape(self.name),
            self.ord,
            self.start_us,
            self.dur_us.map_or("null".to_owned(), |d| d.to_string()),
        );
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&child.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Renders this subtree as an indented text tree with durations.
    pub fn render_text(&self) -> String {
        fn render(node: &SpanNode, depth: usize, out: &mut String) {
            let dur = node.dur_us.map_or("(open)".to_owned(), |d| fmt_us(d as f64));
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} {dur}\n", node.name));
            for child in &node.children {
                render(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        render(self, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_sibling_order_follow_ordinals() {
        let t = Tracer::new();
        let root = t.start(NO_SPAN, "root", 0);
        // Open children out of ordinal order; the tree must sort them.
        let b = t.start(root, "b", 1);
        let a = t.start(root, "a", 0);
        let leaf = t.start(a, "leaf", 0);
        for span in [leaf, a, b, root] {
            t.end(span);
        }
        let tree = t.tree();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].shape(), "root(a(leaf),b)");
        assert!(tree[0].dur_us.is_some());
    }

    #[test]
    fn tree_is_deterministic_under_concurrent_workers() {
        // Workers record chunk spans in scheduler order; the ordinal makes
        // the reconstruction identical across runs and thread counts.
        let expected = {
            let t = Tracer::new();
            let root = t.start(NO_SPAN, "parallel", 0);
            for i in 0..8u64 {
                t.end(t.start(root, "chunk", i));
            }
            t.end(root);
            t.tree()[0].shape()
        };
        for _ in 0..4 {
            let t = Tracer::new();
            let root = t.start(NO_SPAN, "parallel", 0);
            let ords: Vec<u64> = (0..8).collect();
            std::thread::scope(|scope| {
                for &i in &ords {
                    let t = &t;
                    scope.spawn(move || {
                        let s = t.start(root, "chunk", i);
                        t.end(s);
                    });
                }
            });
            t.end(root);
            let tree = t.tree();
            assert_eq!(tree[0].shape(), expected);
            assert_eq!(tree[0].children.len(), 8);
            let ords_seen: Vec<u64> = tree[0].children.iter().map(|c| c.ord).collect();
            assert_eq!(ords_seen, ords);
        }
    }

    #[test]
    fn equal_ordinals_keep_recording_order() {
        let t = Tracer::new();
        let root = t.start(NO_SPAN, "root", 0);
        t.end(t.start(root, "first", 0));
        t.end(t.start(root, "second", 0));
        t.end(root);
        assert_eq!(t.tree()[0].shape(), "root(first,second)");
    }

    #[test]
    fn open_and_no_span_are_harmless() {
        let t = Tracer::new();
        t.end(NO_SPAN);
        let s = t.start(NO_SPAN, "open", 0);
        let text = t.render_text();
        assert!(text.contains("open (open)"), "{text}");
        t.end(s);
        t.end(s); // double close keeps the first duration
        assert!(t.tree()[0].dur_us.is_some());
    }

    #[test]
    fn backdated_spans_are_closed_and_ordered() {
        let t = Tracer::new();
        let root = t.start(NO_SPAN, "request", 0);
        // The wait ended "now" but started before the root opened.
        let wait = t.record_with_duration(root, "queue_wait", 0, 1_000_000);
        t.end(t.start(root, "work", 0));
        t.end(root);
        t.end(wait); // double close keeps the synthesized duration
        let tree = t.tree();
        assert_eq!(tree[0].shape(), "request(queue_wait,work)");
        assert_eq!(tree[0].children[0].dur_us, Some(1_000_000));
    }

    #[test]
    fn json_renders_nested_spans() {
        let t = Tracer::new();
        let root = t.start(NO_SPAN, "root", 0);
        t.end(t.start(root, "kid", 0));
        t.end(root);
        let text = t.to_json();
        assert!(crate::json::is_valid(&text), "{text}");
        assert!(text.contains("\"name\":\"kid\""));
    }
}
