//! The metrics registry: named counters and quantile-capable histograms.
//!
//! Both maps are `BTreeMap`s so every rendering (text or JSON) comes out
//! in one deterministic key order regardless of which worker thread
//! recorded what first.
//!
//! Histograms are **fixed log-bucketed**: bucket `i` holds values in
//! `[2^(i-1), 2^i - 1]` (bucket 0 holds exactly 0), 65 buckets cover the
//! whole `u64` range, and a quantile is answered by a rank walk over the
//! bucket counts. The representation is a plain array of counts, so two
//! histograms recorded by different workers [`merge`](Histogram::merge)
//! by element-wise addition, and a scrape loop can subtract a baseline
//! ([`Histogram::delta_since`]) to get only the traffic since the last
//! scrape — the mechanism behind the server's `STATS` verb.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json;

/// Number of log buckets: bucket 0 for the value 0, buckets 1..=64 for
/// `[2^(i-1), 2^i - 1]`.
const BUCKETS: usize = 65;

/// Summary statistics of one observed series, with log-bucketed counts
/// for quantile estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: 0, max: 0, buckets: [0; BUCKETS] }
    }
}

/// The bucket index for `value`: 0 for 0, otherwise one past the highest
/// set bit, so bucket `i` spans `[2^(i-1), 2^i - 1]`.
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold — the resolution bound a
/// quantile estimate is rounded up to.
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// The smallest value bucket `i` can hold.
fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the rank-⌈q·count⌉ observation, clamped to the
    /// exact observed `[min, max]`. 0 when empty. The log buckets bound
    /// the relative error by 2×, and the clamp makes single-bucket
    /// series (and the extremes) exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` — element-wise bucket addition, so
    /// per-worker (or per-shard) histograms combine into one with the
    /// same quantile estimates a single shared histogram would have
    /// produced. An empty `other` is a no-op: an idle shard must not
    /// drag the merged `min` to its 0 sentinel. Sums saturate rather
    /// than wrap, so a pathological series degrades its totals instead
    /// of panicking the scrape path.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// The observations recorded since `baseline` was snapshotted from
    /// the same series: counts, sums, and buckets subtract exactly;
    /// `min`/`max` are not recoverable from a monotone snapshot pair, so
    /// they are re-derived from the delta buckets (bucket bounds clamped
    /// to the cumulative observed range) — within the same 2× resolution
    /// as the quantiles.
    pub fn delta_since(&self, baseline: &Histogram) -> Histogram {
        let mut delta = Histogram {
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        };
        if delta.count == 0 {
            return delta;
        }
        for (i, slot) in delta.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(baseline.buckets[i]);
        }
        let first = delta.buckets.iter().position(|&n| n > 0).unwrap_or(0);
        let last = delta.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
        delta.min = bucket_lower(first).clamp(self.min, self.max);
        delta.max = bucket_upper(last).clamp(self.min, self.max);
        delta
    }

    /// Renders the one-line text summary used by
    /// [`MetricsRegistry::render_text`].
    fn render_summary(&self) -> String {
        format!(
            "count={} sum={} min={} mean={:.1} max={} p50={} p90={} p99={}",
            self.count,
            self.sum,
            self.min,
            self.mean(),
            self.max,
            self.p50(),
            self.p90(),
            self.p99()
        )
    }

    /// Renders the histogram as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.count,
            self.sum,
            self.min,
            self.max,
            self.p50(),
            self.p90(),
            self.p99()
        )
    }
}

/// A point-in-time copy of a registry's counters and histograms — the
/// unit a scrape loop diffs ([`delta_since`](MetricsSnapshot::delta_since))
/// and the server's `STATS` verb serializes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by key.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by key.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The activity between `baseline` and `self`: counter deltas and
    /// per-histogram [`Histogram::delta_since`]. Entries whose delta is
    /// zero observations are dropped, so an idle scrape returns `{}`s.
    pub fn delta_since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut delta = MetricsSnapshot::default();
        for (key, &value) in &self.counters {
            let before = baseline.counters.get(key).copied().unwrap_or(0);
            if value > before {
                delta.counters.insert(key.clone(), value - before);
            }
        }
        for (key, h) in &self.histograms {
            let d = match baseline.histograms.get(key) {
                Some(before) => h.delta_since(before),
                None => *h,
            };
            if d.count() > 0 {
                delta.histograms.insert(key.clone(), d);
            }
        }
        delta
    }

    /// Renders the snapshot in Prometheus text exposition style for
    /// external scrapers: every counter becomes a `bschema_*` counter
    /// family, every histogram a summary family (`{quantile="..."}`
    /// series plus `_sum`/`_count`). Names are sanitised through
    /// [`prom_name`]; keys that collide after sanitisation merge
    /// (counters sum, histograms [`Histogram::merge`]) so the exposition
    /// never repeats a metric name — the invariant CI lints.
    pub fn render_prom(&self) -> String {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for (key, &value) in &self.counters {
            let slot = counters.entry(prom_name(key)).or_insert(0);
            *slot = slot.saturating_add(value);
        }
        let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        for (key, h) in &self.histograms {
            histograms.entry(prom_name(key)).or_default().merge(h);
        }
        let mut out = String::new();
        for (name, value) in &counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, h) in &histograms {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum(), h.count()));
        }
        out
    }

    /// Renders the snapshot as one JSON object with deterministically
    /// (BTreeMap) ordered keys:
    /// `{"counters":{...},"histograms":{"k":{"count":..,...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{value}", json::escape(key)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::escape(key), h.to_json()));
        }
        out.push_str("}}");
        out
    }
}

/// Sanitises a registry key into a Prometheus-legal metric name:
/// `bschema_` prefix, lowercase, every non-`[a-z0-9_]` byte mapped to
/// `_` (so `server.request_us.TXN` → `bschema_server_request_us_txn`).
pub fn prom_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 8);
    out.push_str("bschema_");
    for c in key.chars() {
        match c.to_ascii_lowercase() {
            c @ ('a'..='z' | '0'..='9' | '_') => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// Thread-safe counters + histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments the counter `key` by `by` (creating it at 0).
    pub fn add(&self, key: &str, by: u64) {
        let mut counters = self.counters.lock().expect("metrics mutex poisoned");
        match counters.get_mut(key) {
            Some(v) => *v += by,
            None => {
                counters.insert(key.to_owned(), by);
            }
        }
    }

    /// Increments the counter `key.label` by `by`.
    pub fn add_labeled(&self, key: &str, label: &str, by: u64) {
        self.add(&format!("{key}.{label}"), by);
    }

    /// Records `value` into the histogram `key`.
    pub fn observe(&self, key: &str, value: u64) {
        let mut histograms = self.histograms.lock().expect("metrics mutex poisoned");
        histograms.entry(key.to_owned()).or_default().record(value);
    }

    /// The current value of counter `key` (0 if never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.lock().expect("metrics mutex poisoned").get(key).copied().unwrap_or(0)
    }

    /// A snapshot of every counter.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters.lock().expect("metrics mutex poisoned").clone()
    }

    /// The histogram `key`, if anything was observed under it.
    pub fn histogram(&self, key: &str) -> Option<Histogram> {
        self.histograms.lock().expect("metrics mutex poisoned").get(key).copied()
    }

    /// A snapshot of every histogram.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        self.histograms.lock().expect("metrics mutex poisoned").clone()
    }

    /// A consistent point-in-time snapshot of everything — the scrape
    /// unit `STATS` diffs against its per-service baseline.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot { counters: self.counters(), histograms: self.histograms() }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.lock().expect("metrics mutex poisoned").is_empty()
            && self.histograms.lock().expect("metrics mutex poisoned").is_empty()
    }

    /// Renders the counters as an aligned table followed by one summary
    /// line per histogram.
    pub fn render_text(&self) -> String {
        let counters = self.counters();
        let histograms = self.histograms();
        let width = counters.keys().chain(histograms.keys()).map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (key, value) in &counters {
            out.push_str(&format!("{key:<width$}  {value}\n"));
        }
        for (key, h) in &histograms {
            out.push_str(&format!("{key:<width$}  {}\n", h.render_summary()));
        }
        out
    }

    /// Renders everything as one JSON object:
    /// `{"counters":{...},"histograms":{"k":{"count":..,"sum":..,...}}}`.
    /// Key order is the `BTreeMap` order, so the output is stable across
    /// runs and thread schedules — CI diffs it directly.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Renders everything in Prometheus text exposition style (see
    /// [`MetricsSnapshot::render_prom`]).
    pub fn render_prom(&self) -> String {
        self.snapshot().render_prom()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.add("a", 1);
        m.add("a", 2);
        m.add_labeled("rule", "path", 4);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("rule.path"), 4);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_math() {
        let m = MetricsRegistry::new();
        for v in [5u64, 1, 9] {
            m.observe("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (3, 15, 1, 9));
        assert!((h.mean() - 5.0).abs() < 1e-9);
        assert_eq!(Histogram::default().mean(), 0.0);
        // Empty histograms answer 0 everywhere — no NaN, no panic.
        assert_eq!(Histogram::default().quantile(0.5), 0);
        assert_eq!(Histogram::default().p99(), 0);
    }

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = Histogram::default();
        // 90 fast (≤ 15µs bucket), 9 medium, 1 slow outlier.
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(10_000);
        assert_eq!(h.count(), 100);
        // p50 and p90 land in the fast bucket [8,15]; clamped ≥ min.
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p90(), 15);
        // p99 lands in the medium bucket [64,127].
        assert_eq!(h.p99(), 127);
        // The extreme quantile is exact thanks to the max clamp.
        assert_eq!(h.quantile(1.0), 10_000);
        // Single-value series are exact at every quantile.
        let mut one = Histogram::default();
        one.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 7);
        }
    }

    #[test]
    fn merge_matches_a_shared_histogram() {
        let mut shared = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [3u64, 900, 17, 2] {
            shared.record(v);
            a.record(v);
        }
        for v in [1u64, 64, 4096] {
            shared.record(v);
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, shared);
        // Merging an empty histogram is the identity.
        let before = a;
        a.merge(&Histogram::default());
        assert_eq!(a, before);
        let mut empty = Histogram::default();
        empty.merge(&b);
        assert_eq!(empty, b);
    }

    /// The per-shard merge edges: idle shards contribute nothing (not a
    /// phantom `min=0` observation), an all-idle merge stays a clean
    /// zero (no NaN mean, zero quantiles), and merging overflowing sums
    /// saturates instead of wrapping or panicking.
    #[test]
    fn merge_empty_shard_edges() {
        // All shards idle: the merged histogram is exactly empty.
        let mut merged = Histogram::default();
        for _ in 0..4 {
            merged.merge(&Histogram::default());
        }
        assert_eq!(merged, Histogram::default());
        assert_eq!(merged.count(), 0);
        assert_eq!((merged.min(), merged.max()), (0, 0));
        assert_eq!(merged.p50(), 0);
        assert_eq!(merged.p99(), 0);
        assert_eq!(merged.mean(), 0.0, "empty mean must be 0.0, not NaN");

        // One busy shard among idle ones: the merge is that shard,
        // bit-for-bit — the idle shards' min/max sentinels never leak.
        let mut busy = Histogram::default();
        busy.record(40);
        busy.record(9_000);
        let mut merged = Histogram::default();
        merged.merge(&Histogram::default());
        merged.merge(&busy);
        merged.merge(&Histogram::default());
        assert_eq!(merged, busy);
        assert_eq!(merged.min(), 40, "idle shard dragged min to 0");

        // Saturation: two histograms whose counts/sums sum past u64::MAX
        // merge to the ceiling instead of wrapping (or panicking in
        // debug builds) — a scrape must never die on a broken series.
        let mut near_max = Histogram::default();
        near_max.record(u64::MAX - 1);
        let mut huge = near_max;
        huge.merge(&near_max);
        assert_eq!(huge.count(), 2);
        assert_eq!(huge.sum(), u64::MAX, "sum must saturate, not wrap");
        let idle_delta = huge.delta_since(&huge);
        assert_eq!(idle_delta.count(), 0);
        assert_eq!(idle_delta.sum(), 0, "saturated series still deltas to zero");
    }

    #[test]
    fn delta_since_subtracts_buckets() {
        let mut h = Histogram::default();
        h.record(10);
        h.record(20);
        let baseline = h;
        h.record(100);
        h.record(200);
        let d = h.delta_since(&baseline);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 300);
        // min/max are bucket-resolution estimates within observed range.
        assert!(d.min() <= 100 && d.min() >= h.min(), "{}", d.min());
        assert!(d.max() >= 200 && d.max() <= h.max(), "{}", d.max());
        // No traffic → an all-zero delta.
        let idle = h.delta_since(&h);
        assert_eq!(idle.count(), 0);
        assert_eq!(idle.sum(), 0);
    }

    #[test]
    fn snapshot_delta_drops_idle_series() {
        let m = MetricsRegistry::new();
        m.add("steady", 5);
        m.add("busy", 1);
        m.observe("lat", 10);
        let baseline = m.snapshot();
        m.add("busy", 2);
        m.observe("lat", 30);
        m.observe("fresh", 7);
        let delta = m.snapshot().delta_since(&baseline);
        assert_eq!(delta.counters.get("busy"), Some(&2));
        assert!(!delta.counters.contains_key("steady"));
        assert_eq!(delta.histograms.get("lat").unwrap().count(), 1);
        assert_eq!(delta.histograms.get("lat").unwrap().sum(), 30);
        assert_eq!(delta.histograms.get("fresh").unwrap().sum(), 7);
        // Fully idle interval → both maps empty.
        let idle = m.snapshot().delta_since(&m.snapshot());
        assert!(idle.counters.is_empty() && idle.histograms.is_empty());
        assert!(json::is_valid(&idle.to_json()));
    }

    #[test]
    fn concurrent_updates_sum_correctly() {
        let m = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = &m;
                scope.spawn(move || {
                    for _ in 0..100 {
                        m.add("hits", 1);
                        m.observe("vals", 2);
                    }
                });
            }
        });
        assert_eq!(m.counter("hits"), 800);
        assert_eq!(m.histogram("vals").unwrap().count(), 800);
        assert_eq!(m.histogram("vals").unwrap().sum(), 1600);
        assert_eq!(m.histogram("vals").unwrap().p99(), 2);
    }

    #[test]
    fn text_rendering_is_sorted_and_aligned() {
        let m = MetricsRegistry::new();
        m.add("zebra", 1);
        m.add("apple", 2);
        m.observe("mid", 7);
        let text = m.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("apple"));
        assert!(lines[1].starts_with("zebra"));
        assert!(lines[2].contains("count=1 sum=7 min=7 mean=7.0 max=7 p50=7 p90=7 p99=7"));
    }

    /// The empty-series contract, pinned field by field: every quantile
    /// accessor of a never-observed histogram answers exactly 0 — no
    /// NaN, no panic, no stale sentinel. A scrape of an idle series and
    /// the first `HEALTH` window of a fresh server both depend on it.
    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let empty = Histogram::default();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.sum(), 0);
        assert_eq!(empty.min(), 0);
        assert_eq!(empty.max(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p90(), 0);
        assert_eq!(empty.p99(), 0);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0, "quantile({q}) of empty series");
        }
        // The same holds for an empty delta of a busy series.
        let mut busy = Histogram::default();
        busy.record(1000);
        let idle = busy.delta_since(&busy);
        assert_eq!((idle.p50(), idle.p90(), idle.p99(), idle.max()), (0, 0, 0, 0));
    }

    #[test]
    fn prom_exposition_is_unique_typed_and_sane() {
        let m = MetricsRegistry::new();
        m.add("server.request.TXN", 3);
        m.add("server.request.txn", 2); // collides after sanitisation → sums
        m.observe("server.request_us.TXN", 100);
        m.observe("server.request_us.TXN", 300);
        let text = m.render_prom();
        assert!(text.contains("# TYPE bschema_server_request_txn counter\n"));
        assert!(text.contains("bschema_server_request_txn 5\n"), "{text}");
        assert!(text.contains("# TYPE bschema_server_request_us_txn summary\n"));
        assert!(text.contains("bschema_server_request_us_txn{quantile=\"0.99\"}"));
        assert!(text.contains("bschema_server_request_us_txn_sum 400\n"));
        assert!(text.contains("bschema_server_request_us_txn_count 2\n"));
        // Every metric name appears exactly once, and each has a TYPE.
        let mut names: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate TYPE lines in {text}");
        assert_eq!(prom_name("sharded.prepare.shard0"), "bschema_sharded_prepare_shard0");
        assert_eq!(prom_name("weird-key µ"), "bschema_weird_key__");
        // An empty registry exposes nothing (no stray headers).
        assert_eq!(MetricsRegistry::new().render_prom(), "");
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let m = MetricsRegistry::new();
        m.add("b", 2);
        m.add("a", 1);
        m.observe("h", 3);
        let text = m.to_json();
        assert!(json::is_valid(&text), "{text}");
        assert_eq!(text, m.to_json());
        assert!(text.find("\"a\":1").unwrap() < text.find("\"b\":2").unwrap());
        assert!(text.contains("\"p50\":3"), "{text}");
    }

    #[test]
    fn empty_registry_exports_a_pinned_shape() {
        // The exporter contract CI depends on: an empty registry emits
        // exactly this object, and it is valid JSON.
        let m = MetricsRegistry::new();
        assert_eq!(m.to_json(), "{\"counters\":{},\"histograms\":{}}");
        assert!(json::is_valid(&m.to_json()));
        assert_eq!(m.render_text(), "");
        // An empty histogram entry still renders non-NaN fields.
        m.observe("h", 0);
        assert!(m.to_json().contains("\"count\":1"));
    }
}
