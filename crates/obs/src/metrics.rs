//! The metrics registry: named counters and min/mean/max histograms.
//!
//! Both maps are `BTreeMap`s so every rendering (text or JSON) comes out
//! in one deterministic key order regardless of which worker thread
//! recorded what first.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json;

/// Summary statistics of one observed series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Thread-safe counters + histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments the counter `key` by `by` (creating it at 0).
    pub fn add(&self, key: &str, by: u64) {
        let mut counters = self.counters.lock().expect("metrics mutex poisoned");
        match counters.get_mut(key) {
            Some(v) => *v += by,
            None => {
                counters.insert(key.to_owned(), by);
            }
        }
    }

    /// Increments the counter `key.label` by `by`.
    pub fn add_labeled(&self, key: &str, label: &str, by: u64) {
        self.add(&format!("{key}.{label}"), by);
    }

    /// Records `value` into the histogram `key`.
    pub fn observe(&self, key: &str, value: u64) {
        let mut histograms = self.histograms.lock().expect("metrics mutex poisoned");
        histograms.entry(key.to_owned()).or_default().record(value);
    }

    /// The current value of counter `key` (0 if never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.lock().expect("metrics mutex poisoned").get(key).copied().unwrap_or(0)
    }

    /// A snapshot of every counter.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.counters.lock().expect("metrics mutex poisoned").clone()
    }

    /// The histogram `key`, if anything was observed under it.
    pub fn histogram(&self, key: &str) -> Option<Histogram> {
        self.histograms.lock().expect("metrics mutex poisoned").get(key).copied()
    }

    /// A snapshot of every histogram.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        self.histograms.lock().expect("metrics mutex poisoned").clone()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.lock().expect("metrics mutex poisoned").is_empty()
            && self.histograms.lock().expect("metrics mutex poisoned").is_empty()
    }

    /// Renders the counters as an aligned table followed by one summary
    /// line per histogram.
    pub fn render_text(&self) -> String {
        let counters = self.counters();
        let histograms = self.histograms();
        let width = counters.keys().chain(histograms.keys()).map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (key, value) in &counters {
            out.push_str(&format!("{key:<width$}  {value}\n"));
        }
        for (key, h) in &histograms {
            out.push_str(&format!(
                "{key:<width$}  count={} sum={} min={} mean={:.1} max={}\n",
                h.count(),
                h.sum(),
                h.min(),
                h.mean(),
                h.max()
            ));
        }
        out
    }

    /// Renders everything as one JSON object:
    /// `{"counters":{...},"histograms":{"k":{"count":..,"sum":..,...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (key, value)) in self.counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{value}", json::escape(key)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (key, h)) in self.histograms().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                json::escape(key),
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.add("a", 1);
        m.add("a", 2);
        m.add_labeled("rule", "path", 4);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("rule.path"), 4);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_math() {
        let m = MetricsRegistry::new();
        for v in [5u64, 1, 9] {
            m.observe("h", v);
        }
        let h = m.histogram("h").unwrap();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (3, 15, 1, 9));
        assert!((h.mean() - 5.0).abs() < 1e-9);
        assert_eq!(Histogram::default().mean(), 0.0);
    }

    #[test]
    fn concurrent_updates_sum_correctly() {
        let m = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = &m;
                scope.spawn(move || {
                    for _ in 0..100 {
                        m.add("hits", 1);
                        m.observe("vals", 2);
                    }
                });
            }
        });
        assert_eq!(m.counter("hits"), 800);
        assert_eq!(m.histogram("vals").unwrap().count(), 800);
        assert_eq!(m.histogram("vals").unwrap().sum(), 1600);
    }

    #[test]
    fn text_rendering_is_sorted_and_aligned() {
        let m = MetricsRegistry::new();
        m.add("zebra", 1);
        m.add("apple", 2);
        m.observe("mid", 7);
        let text = m.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("apple"));
        assert!(lines[1].starts_with("zebra"));
        assert!(lines[2].contains("count=1 sum=7 min=7 mean=7.0 max=7"));
    }

    #[test]
    fn json_is_valid_and_deterministic() {
        let m = MetricsRegistry::new();
        m.add("b", 2);
        m.add("a", 1);
        m.observe("h", 3);
        let text = m.to_json();
        assert!(json::is_valid(&text), "{text}");
        assert_eq!(text, m.to_json());
        assert!(text.find("\"a\":1").unwrap() < text.find("\"b\":2").unwrap());
        assert!(MetricsRegistry::new().to_json().contains("{\"counters\":{}"));
    }
}
