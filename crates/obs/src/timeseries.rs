//! Fixed-capacity time-series retention over a [`MetricsRegistry`].
//!
//! The registry is cumulative: counters only grow, histograms only
//! accumulate. [`TimeSeries`] turns that into *history*: a monitor loop
//! feeds it one [`MetricsSnapshot`] per tick, the ring stores the
//! **delta** each tick contributed (via [`MetricsSnapshot::delta_since`]
//! against the previous tick), and windowed queries — request rate over
//! the last N ticks, p99 over the last N ticks — fall out by merging
//! the retained deltas. Capacity is fixed at construction, so a server
//! that runs for a month holds exactly as much monitoring state as one
//! that ran for an hour.
//!
//! This is the storage layer of the health plane: the `WATCH` verb
//! streams the per-tick deltas, and the `HEALTH` verdict and SLO
//! burn-rate computation read the merged window.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::metrics::MetricsSnapshot;

/// One monitor tick: the sequence number, when it was taken (µs since
/// the sampler's origin), how much wall-clock it covers, and the
/// counter/histogram activity since the previous tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickPoint {
    /// Tick sequence number, starting at 1 for the first recorded tick.
    pub seq: u64,
    /// Microseconds since the sampler's origin when the tick was taken.
    pub at_us: u64,
    /// Wall-clock microseconds this tick covers (since the previous
    /// tick, or since the origin for the first).
    pub dur_us: u64,
    /// The activity recorded during this tick (idle series omitted, as
    /// [`MetricsSnapshot::delta_since`] does).
    pub delta: MetricsSnapshot,
}

impl TickPoint {
    /// Renders the tick as one JSON object — the `WATCH` frame payload.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tick\":{},\"at_us\":{},\"dur_us\":{},\"delta\":{}}}",
            self.seq,
            self.at_us,
            self.dur_us,
            self.delta.to_json()
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// The previous tick's cumulative snapshot — the delta baseline.
    last: MetricsSnapshot,
    /// Timestamp of the previous tick (µs since origin).
    last_at_us: u64,
    /// Retained ticks, oldest first.
    points: VecDeque<TickPoint>,
    /// Total ticks ever recorded (≥ `points.len()` once the ring wraps).
    ticks: u64,
}

/// A bounded ring of per-tick metric deltas with windowed rate and
/// quantile queries. Thread-safe: the monitor thread records while
/// `WATCH`/`HEALTH` handlers read.
#[derive(Debug)]
pub struct TimeSeries {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl TimeSeries {
    /// A ring retaining the most recent `capacity` ticks (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        TimeSeries { inner: Mutex::new(Inner::default()), capacity: capacity.max(1) }
    }

    /// The fixed retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total ticks recorded over the ring's lifetime.
    pub fn ticks(&self) -> u64 {
        self.lock().ticks
    }

    /// Ticks currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.lock().points.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().points.is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one tick: `snapshot` is the registry's cumulative state,
    /// `at_us` the caller's monotonic clock (µs since its origin; must
    /// not run backwards). Computes the delta against the previous tick,
    /// retains it (evicting the oldest beyond capacity), and returns the
    /// new point.
    pub fn record(&self, snapshot: MetricsSnapshot, at_us: u64) -> TickPoint {
        let mut inner = self.lock();
        let delta = snapshot.delta_since(&inner.last);
        inner.ticks += 1;
        let point = TickPoint {
            seq: inner.ticks,
            at_us,
            dur_us: at_us.saturating_sub(inner.last_at_us),
            delta,
        };
        inner.last = snapshot;
        inner.last_at_us = at_us;
        inner.points.push_back(point.clone());
        while inner.points.len() > self.capacity {
            inner.points.pop_front();
        }
        point
    }

    /// The most recent tick, if any.
    pub fn last(&self) -> Option<TickPoint> {
        self.lock().points.back().cloned()
    }

    /// The merged activity of the last `n` retained ticks (counters
    /// summed, histograms bucket-merged) plus the wall-clock span those
    /// ticks cover. `n = 0` or an empty ring yields an empty window.
    pub fn window(&self, n: usize) -> (MetricsSnapshot, u64) {
        let inner = self.lock();
        let take = n.min(inner.points.len());
        let mut merged = MetricsSnapshot::default();
        let mut span_us = 0u64;
        for point in inner.points.iter().rev().take(take) {
            span_us = span_us.saturating_add(point.dur_us);
            for (key, &value) in &point.delta.counters {
                let slot = merged.counters.entry(key.clone()).or_insert(0);
                *slot = slot.saturating_add(value);
            }
            for (key, h) in &point.delta.histograms {
                merged.histograms.entry(key.clone()).or_default().merge(h);
            }
        }
        (merged, span_us)
    }

    /// Counter `key`'s rate per second over the last `n` ticks (0.0 when
    /// the window is empty or covers no time).
    pub fn rate(&self, key: &str, n: usize) -> f64 {
        let (window, span_us) = self.window(n);
        let total = window.counters.get(key).copied().unwrap_or(0);
        if span_us == 0 {
            return 0.0;
        }
        total as f64 / (span_us as f64 / 1_000_000.0)
    }

    /// Histogram `key`'s `q`-quantile over the last `n` ticks (0 when
    /// the series was idle across the window — the empty-histogram
    /// contract).
    pub fn quantile(&self, key: &str, q: f64, n: usize) -> u64 {
        let (window, _) = self.window(n);
        window.histograms.get(key).copied().unwrap_or_default().quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn ring_deltas_and_evicts() {
        let m = MetricsRegistry::new();
        let ts = TimeSeries::new(3);
        assert!(ts.is_empty());
        for i in 1..=5u64 {
            m.add("reqs", 2);
            m.observe("lat", 10 * i);
            let point = ts.record(m.snapshot(), i * 1_000_000);
            assert_eq!(point.seq, i);
            assert_eq!(point.dur_us, 1_000_000);
            assert_eq!(point.delta.counters.get("reqs"), Some(&2));
            assert_eq!(point.delta.histograms.get("lat").unwrap().count(), 1);
        }
        // Capacity 3: ticks 3..=5 retained, 5 recorded.
        assert_eq!(ts.ticks(), 5);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last().unwrap().seq, 5);
        let (window, span_us) = ts.window(3);
        assert_eq!(window.counters.get("reqs"), Some(&6));
        assert_eq!(span_us, 3_000_000);
        assert_eq!(window.histograms.get("lat").unwrap().count(), 3);
        // 6 counts over 3 seconds.
        assert!((ts.rate("reqs", 3) - 2.0).abs() < 1e-9, "{}", ts.rate("reqs", 3));
        // Quantile over the merged window: values 30, 40, 50 recorded.
        let p = ts.quantile("lat", 1.0, 3);
        assert!(p >= 50, "window max quantile ≥ the largest retained value, got {p}");
    }

    #[test]
    fn idle_ticks_are_empty_and_harmless() {
        let m = MetricsRegistry::new();
        let ts = TimeSeries::new(8);
        m.add("reqs", 1);
        ts.record(m.snapshot(), 100);
        let idle = ts.record(m.snapshot(), 200);
        assert!(idle.delta.counters.is_empty());
        assert!(idle.delta.histograms.is_empty());
        assert_eq!(ts.rate("reqs", 1), 0.0, "idle window has rate 0");
        assert_eq!(ts.quantile("absent", 0.99, 8), 0);
        // Window larger than retention is clamped, not an error.
        let (window, _) = ts.window(100);
        assert_eq!(window.counters.get("reqs"), Some(&1));
    }

    #[test]
    fn tick_json_is_valid() {
        let m = MetricsRegistry::new();
        let ts = TimeSeries::new(2);
        m.add("a", 1);
        m.observe("h", 7);
        let point = ts.record(m.snapshot(), 42);
        let json = point.to_json();
        assert!(crate::json::is_valid(&json), "{json}");
        let v = crate::json::Value::parse(&json).unwrap();
        assert_eq!(v.get("tick").unwrap().as_u64(), Some(1));
        assert_eq!(v.path("delta.counters.a").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ts = TimeSeries::new(0);
        assert_eq!(ts.capacity(), 1);
        let m = MetricsRegistry::new();
        ts.record(m.snapshot(), 1);
        ts.record(m.snapshot(), 2);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.ticks(), 2);
    }
}
