//! Wire-propagated trace context and the per-request span collector.
//!
//! [`TraceContext`] is the identity a client stamps on a request frame
//! (`tc=<trace-id>.<parent-span>` as an ordinary header token) so the
//! server can attribute everything it does for that frame — queue wait,
//! worker dispatch, journal write, legality check, per-Figure-5
//! Δ-queries — to the caller's trace. Ids are **deterministic**: the
//! client derives them from a per-connection sequence number, never a
//! clock, so loopback tests can pin exact ids.
//!
//! [`RequestTrace`] is the server-side collector: a fresh [`Tracer`]
//! per request plus a re-parenting [`Probe`]. The engines all open
//! their root spans at [`NO_SPAN`] (they know nothing about requests);
//! `RequestTrace` rewrites that parent to the request's root span, so a
//! single TXN yields **one** connected span tree from `server.request`
//! down to each Δ-query, while counters and histograms keep flowing to
//! the shared per-process registry.

use std::fmt;
use std::sync::Arc;

use crate::span::{SpanNode, Tracer};
use crate::{Probe, SpanId, NO_SPAN};

/// The longest `tc=` token body ([`TraceContext::parse_token`])
/// accepted off the wire. Generous for any real client (`<label>-<n>.<span>`)
/// while keeping trace ids bounded in logs and flight records.
const MAX_TOKEN_BODY: usize = 256;

/// A request's trace identity: who asked (`trace_id`) and which of the
/// caller's spans this request hangs under (`parent_span`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// Caller-chosen trace identifier. Sequence-derived, not a clock:
    /// the bundled client stamps `<label>-<n>` with a per-connection
    /// counter `n`.
    pub trace_id: String,
    /// The caller-side span this request is a child of (0 for a root).
    pub parent_span: u64,
}

impl TraceContext {
    /// A context rooted at `trace_id` (parent span 0).
    pub fn new(trace_id: impl Into<String>) -> Self {
        TraceContext { trace_id: trace_id.into(), parent_span: 0 }
    }

    /// Renders the context as the wire header token
    /// `tc=<trace_id>.<parent_span>`. The result is whitespace-free as
    /// long as the trace id is (the codec rejects it otherwise).
    pub fn wire_token(&self) -> String {
        format!("tc={}.{}", self.trace_id, self.parent_span)
    }

    /// Parses a header token produced by [`wire_token`]
    /// (`TraceContext::wire_token`). Returns `None` for anything else —
    /// unknown tokens must stay inert so old clients keep working
    /// against new servers and vice versa.
    pub fn parse_token(token: &str) -> Option<TraceContext> {
        let body = token.strip_prefix("tc=")?;
        // A hostile or corrupted token must not become an unbounded
        // trace id echoed through every log line and flight record.
        if body.len() > MAX_TOKEN_BODY {
            return None;
        }
        let (id, span) = body.rsplit_once('.')?;
        if id.is_empty() {
            return None;
        }
        Some(TraceContext { trace_id: id.to_owned(), parent_span: span.parse().ok()? })
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.trace_id, self.parent_span)
    }
}

/// A per-request span collector that re-parents engine span trees under
/// one request root and forwards all metric traffic to a shared probe.
///
/// The request root is opened at construction and closed by
/// [`finish`](RequestTrace::finish), which hands back the completed
/// [`SpanNode`] tree (for the flight recorder) and the root duration.
#[derive(Debug)]
pub struct RequestTrace {
    tracer: Tracer,
    root: SpanId,
    shared: Arc<dyn Probe + Send + Sync>,
}

impl RequestTrace {
    /// Opens a request trace rooted at a span named `root_name`.
    /// Counters/histograms recorded through this trace are forwarded to
    /// `shared` (the per-process registry); span events stay private to
    /// this request's tracer.
    pub fn new(shared: Arc<dyn Probe + Send + Sync>, root_name: &'static str) -> Self {
        let tracer = Tracer::new();
        let root = tracer.start(NO_SPAN, root_name, 0);
        RequestTrace { tracer, root, shared }
    }

    /// The request root span — the parent every engine-level root is
    /// rewritten to.
    pub fn root(&self) -> SpanId {
        self.root
    }

    /// Records an already-elapsed wait (e.g. accept-queue time) as a
    /// closed child of the request root.
    pub fn note_wait(&self, name: &'static str, dur_us: u64) {
        self.tracer.record_with_duration(self.root, name, 0, dur_us);
    }

    /// Closes the root and returns the finished span tree plus the
    /// request's total duration in microseconds. Takes `&self` so the
    /// server can finish a trace it shares behind an `Arc`.
    pub fn finish(&self) -> (SpanNode, u64) {
        self.tracer.end(self.root);
        let mut roots = self.tracer.tree();
        let root = roots.swap_remove(0);
        let dur = root.dur_us.unwrap_or(0);
        (root, dur)
    }
}

impl Probe for RequestTrace {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, key: &str, by: u64) {
        self.shared.add(key, by);
    }

    fn add_labeled(&self, key: &str, label: &str, by: u64) {
        self.shared.add_labeled(key, label, by);
    }

    fn observe(&self, key: &str, value: u64) {
        self.shared.observe(key, value);
    }

    fn span_start(&self, parent: SpanId, name: &'static str, ord: u64) -> SpanId {
        // Engines open their roots at NO_SPAN; hang those under the
        // request root so the whole request is one tree.
        let parent = if parent == NO_SPAN { self.root } else { parent };
        self.tracer.start(parent, name, ord)
    }

    fn span_end(&self, span: SpanId) {
        self.tracer.end(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn wire_token_roundtrips() {
        let ctx = TraceContext { trace_id: "cli-3".to_owned(), parent_span: 7 };
        assert_eq!(ctx.wire_token(), "tc=cli-3.7");
        assert_eq!(TraceContext::parse_token("tc=cli-3.7"), Some(ctx));
        // Ids may themselves contain dots; the span is the last segment.
        let dotted = TraceContext::parse_token("tc=host.example-9.0").unwrap();
        assert_eq!(dotted.trace_id, "host.example-9");
        assert_eq!(dotted.parent_span, 0);
    }

    #[test]
    fn foreign_tokens_are_ignored() {
        for bad in ["", "tc=", "tc=.", "tc=.5", "tc=x", "tc=x.y", "limit", "base:o=acme"] {
            assert_eq!(TraceContext::parse_token(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn hostile_tokens_are_bounded_and_inert() {
        // Overlong body: rejected outright, even if otherwise shaped right.
        let long = format!("tc={}.7", "x".repeat(300));
        assert_eq!(TraceContext::parse_token(&long), None);
        // The longest accepted body still parses.
        let id = "y".repeat(MAX_TOKEN_BODY - 2);
        let edge = format!("tc={id}.7");
        let parsed = TraceContext::parse_token(&edge).expect("body at the cap parses");
        assert_eq!(parsed.trace_id, id);
        // A span field beyond u64 is a parse failure, not a panic.
        assert_eq!(TraceContext::parse_token("tc=cli.99999999999999999999999"), None);
        assert_eq!(TraceContext::parse_token("tc=cli.-1"), None);
        assert_eq!(TraceContext::parse_token("tc=cli.1e3"), None);
        // Embedded NULs and controls in the id are carried, not fatal —
        // the codec layer rejects such frames before parse_token runs.
        assert!(TraceContext::parse_token("tc=a\u{0}b.0").is_some());
    }

    #[test]
    fn request_trace_reparents_engine_roots() {
        let shared = Arc::new(Recorder::new());
        let trace = RequestTrace::new(shared.clone(), "server.request");
        let p: &dyn Probe = &trace;
        // An engine opens its root at NO_SPAN, as they all do.
        let check = p.span_start(NO_SPAN, "legality.check", 0);
        let content = p.span_start(check, "content", 0);
        p.span_end(content);
        p.span_end(check);
        p.add("legality.structure_queries", 9);
        let (root, _dur) = trace.finish();
        assert_eq!(root.shape(), "server.request(legality.check(content))");
        assert!(root.dur_us.is_some());
        // Metric traffic went to the shared registry, span traffic did not.
        assert_eq!(shared.metrics().counter("legality.structure_queries"), 9);
        assert!(shared.tracer().is_empty());
    }

    #[test]
    fn waits_are_backdated_children() {
        let trace = RequestTrace::new(Arc::new(Recorder::new()), "server.request");
        trace.note_wait("server.queue_wait", 42);
        let probe: &dyn Probe = &trace;
        probe.span_end(probe.span_start(NO_SPAN, "managed.apply", 0));
        let (root, _) = trace.finish();
        assert_eq!(root.shape(), "server.request(server.queue_wait,managed.apply)");
        assert_eq!(root.children[0].dur_us, Some(42));
    }
}
