//! Duration formatting shared by the CLI, the trace renderer, and the
//! bench harness (formerly private to `run_experiments`).

/// Formats a microsecond count human-readably, auto-scaling the unit:
/// `12.3µs`, `12.34ms`, `2.50s`.
pub fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.1}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_us;

    #[test]
    fn scales_units() {
        assert_eq!(fmt_us(0.0), "0.0µs");
        assert_eq!(fmt_us(12.34), "12.3µs");
        assert_eq!(fmt_us(999.9), "999.9µs");
        assert_eq!(fmt_us(12_340.0), "12.34ms");
        assert_eq!(fmt_us(2_500_000.0), "2.50s");
    }
}
