//! Theorem 4.2 / Figure 5 bench: Δ-checks after a small subtree update vs a
//! full legality recheck, as the base instance grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bschema_bench::org_of_size;
use bschema_core::legality::LegalityChecker;
use bschema_core::paper::white_pages_schema;
use bschema_core::updates::IncrementalChecker;
use bschema_workload::{TxGenerator, TxParams};

fn bench_insertion(c: &mut Criterion) {
    let schema = white_pages_schema();
    let full = LegalityChecker::new(&schema);
    let incremental = IncrementalChecker::new(&schema);
    let mut group = c.benchmark_group("incremental/insert");
    for n in [1_000usize, 10_000] {
        let mut org = org_of_size(n);
        let mut txgen = TxGenerator::new(TxParams::default());
        let tx = txgen.legal_insertion(&org);
        let normalized = tx.normalize(&org.dir).expect("valid tx");
        let root = normalized.insertions[0].apply(&mut org.dir).expect("valid tx applies")[0];
        org.dir.prepare();
        group.bench_with_input(BenchmarkId::new("delta", n), &org, |b, org| {
            b.iter(|| incremental.check_insertion(&org.dir, root))
        });
        group.bench_with_input(BenchmarkId::new("full", n), &org, |b, org| {
            b.iter(|| full.check(&org.dir))
        });
    }
    group.finish();
}

fn bench_deletion(c: &mut Criterion) {
    let schema = white_pages_schema();
    let full = LegalityChecker::new(&schema);
    let incremental = IncrementalChecker::new(&schema);
    let mut group = c.benchmark_group("incremental/delete");
    for n in [1_000usize, 10_000] {
        let mut org = org_of_size(n);
        let mut txgen = TxGenerator::new(TxParams::default());
        let tx = txgen.legal_deletion(&org, &org.dir).expect("deletable person exists");
        let normalized = tx.normalize(&org.dir).expect("valid tx");
        let removed: Vec<_> = normalized
            .deletion_roots
            .iter()
            .flat_map(|&r| org.dir.remove_subtree(r).expect("validated"))
            .map(|(_, e)| e)
            .collect();
        org.dir.prepare();
        group.bench_with_input(BenchmarkId::new("delta", n), &org, |b, org| {
            b.iter(|| incremental.check_deletion(&org.dir, &removed))
        });
        group.bench_with_input(BenchmarkId::new("full", n), &org, |b, org| {
            b.iter(|| full.check(&org.dir))
        });
    }
    group.finish();
}

fn bench_transaction_pipeline(c: &mut Criterion) {
    // End-to-end: normalize + apply + incremental check of a 5-entry
    // insertion transaction (clone cost included, as a ManagedDirectory
    // would pay it).
    let schema = white_pages_schema();
    let mut group = c.benchmark_group("incremental/txn");
    {
        let n = 1_000usize;
        let org = org_of_size(n);
        let mut txgen = TxGenerator::new(TxParams::default());
        let tx = txgen.legal_insertion(&org);
        group.bench_with_input(BenchmarkId::new("apply_and_check", n), &org, |b, org| {
            b.iter(|| {
                let mut dir = org.dir.clone();
                bschema_core::updates::apply_and_check(&schema, &mut dir, &tx)
                    .expect("valid tx")
                    .report
                    .is_legal()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insertion, bench_deletion, bench_transaction_pipeline);
criterion_main!(benches);
