//! Theorem 3.1 bench: full legality checking scales linearly in |D| with
//! the query reduction, quadratically with the naive pairwise checker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bschema_bench::org_of_size;
use bschema_core::legality::{LegalityChecker, LegalityOptions};
use bschema_core::paper::white_pages_schema;

fn bench_legality(c: &mut Criterion) {
    let schema = white_pages_schema();
    let checker = LegalityChecker::new(&schema);
    let par_checker = LegalityChecker::new(&schema).with_options(LegalityOptions::parallel(0));
    let mut group = c.benchmark_group("legality/t31");
    for n in [100usize, 1_000, 10_000] {
        let org = org_of_size(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fast", n), &org, |b, org| {
            b.iter(|| checker.check(&org.dir))
        });
        group.bench_with_input(BenchmarkId::new("fast_par", n), &org, |b, org| {
            b.iter(|| par_checker.check(&org.dir))
        });
        // The quadratic baseline is capped to keep bench runs bounded.
        if n <= 3_000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &org, |b, org| {
                b.iter(|| checker.check_naive(&org.dir))
            });
        }
    }
    group.finish();
}

fn bench_content_vs_structure(c: &mut Criterion) {
    // Split the Theorem 3.1 cost between its two halves.
    let schema = white_pages_schema();
    let org = org_of_size(3_000);
    let mut group = c.benchmark_group("legality/components");
    group.bench_function("content_only", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            bschema_core::legality::content::check_instance(&schema, &org.dir, false, &mut out);
            out
        })
    });
    group.bench_function("structure_only", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            bschema_core::legality::structure::check_instance(&schema, &org.dir, &mut out);
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_legality, bench_content_vs_structure);
criterion_main!(benches);
