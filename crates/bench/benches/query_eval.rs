//! Substrate bench (reference [9]): hierarchical selection operators with
//! the interval-merge evaluator vs the naive evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bschema_bench::org_of_size;
use bschema_query::{evaluate, evaluate_naive, EvalContext, Query};

fn queries() -> Vec<(&'static str, Query)> {
    vec![
        ("child", Query::object_class("orgUnit").with_child(Query::object_class("person"))),
        ("parent", Query::object_class("person").with_parent(Query::object_class("orgUnit"))),
        (
            "descendant",
            Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
        ),
        (
            "ancestor",
            Query::object_class("person").with_ancestor(Query::object_class("organization")),
        ),
        (
            "paper_q1",
            Query::object_class("orgGroup").minus(
                Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
            ),
        ),
    ]
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/q9");
    for n in [1_000usize, 10_000] {
        let org = org_of_size(n);
        let ctx = EvalContext::new(&org.dir);
        group.throughput(Throughput::Elements(n as u64));
        for (name, q) in queries() {
            group.bench_with_input(BenchmarkId::new(format!("interval/{name}"), n), &q, |b, q| {
                b.iter(|| evaluate(&ctx, q))
            });
            if n <= 1_000 {
                group.bench_with_input(BenchmarkId::new(format!("naive/{name}"), n), &q, |b, q| {
                    b.iter(|| evaluate_naive(&ctx, q))
                });
            }
        }
    }
    group.finish();
}

fn bench_filter_shapes(c: &mut Criterion) {
    // Atomic selection routing: indexed class lookup vs full scan.
    use bschema_query::Filter;
    let org = org_of_size(10_000);
    let ctx = EvalContext::new(&org.dir);
    let mut group = c.benchmark_group("query/filters");
    group.bench_function("indexed_object_class", |b| {
        let q = Query::object_class("person");
        b.iter(|| evaluate(&ctx, &q))
    });
    group.bench_function("indexed_presence", |b| {
        let q = Query::select(Filter::present("mail"));
        b.iter(|| evaluate(&ctx, &q))
    });
    group.bench_function("scan_substring", |b| {
        let q = Query::select(Filter::Substring {
            attr: "name".into(),
            initial: Some("name of".into()),
            any: vec![],
            finally: None,
        });
        b.iter(|| evaluate(&ctx, &q))
    });
    group.finish();
}

criterion_group!(benches, bench_operators, bench_filter_shapes);
criterion_main!(benches);
