//! Ablation bench: schema-aware query rewriting (paper §7 future work) —
//! raw vs optimized evaluation of queries the schema can decide or shrink.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bschema_bench::org_of_size;
use bschema_core::paper::white_pages_schema;
use bschema_core::qopt::SchemaAwareOptimizer;
use bschema_query::{evaluate, EvalContext, Query};

fn cases() -> Vec<(&'static str, Query)> {
    vec![
        (
            "required_sigma_d",
            Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
        ),
        (
            "legality_query",
            Query::object_class("orgGroup").minus(
                Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
            ),
        ),
        (
            "subclass_intersection",
            Query::object_class("researcher").intersect(Query::object_class("person")),
        ),
        ("forbidden_sigma_c", Query::object_class("person").with_child(Query::object_class("top"))),
    ]
}

fn bench_qopt(c: &mut Criterion) {
    let schema = white_pages_schema();
    let optimizer = SchemaAwareOptimizer::new(&schema);
    let org = org_of_size(10_000);
    let ctx = EvalContext::new(&org.dir);
    let mut group = c.benchmark_group("qopt");
    for (name, raw) in cases() {
        let optimized = optimizer.optimize(raw.clone());
        assert_eq!(evaluate(&ctx, &raw), evaluate(&ctx, &optimized));
        group.bench_with_input(BenchmarkId::new("raw", name), &raw, |b, q| {
            b.iter(|| evaluate(&ctx, q))
        });
        group.bench_with_input(BenchmarkId::new("optimized", name), &optimized, |b, q| {
            b.iter(|| evaluate(&ctx, q))
        });
    }
    group.finish();
}

fn bench_rewrite_cost(c: &mut Criterion) {
    // The rewrite itself must be cheap relative to evaluation.
    let schema = white_pages_schema();
    let optimizer = SchemaAwareOptimizer::new(&schema);
    let (_, raw) = cases().remove(1);
    c.bench_function("qopt/rewrite_cost", |b| b.iter(|| optimizer.optimize(raw.clone())));
    c.bench_function("qopt/optimizer_construction", |b| {
        b.iter(|| SchemaAwareOptimizer::new(&schema))
    });
}

criterion_group!(benches, bench_qopt, bench_rewrite_cost);
criterion_main!(benches);
