//! Theorem 5.2 bench: consistency-closure time as the schema grows, across
//! the three generated families, plus witness construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bschema_core::consistency::{ConsistencyChecker, WitnessBuilder};
use bschema_workload::{SchemaGenerator, SchemaParams};

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency/t52");
    for n in [10usize, 40, 160] {
        for family in ["consistent", "inconsistent", "unconstrained"] {
            let mut g = SchemaGenerator::new(SchemaParams { seed: 1, ..SchemaParams::sized(n) });
            let schema = match family {
                "consistent" => g.consistent(),
                "inconsistent" => g.inconsistent(),
                _ => g.unconstrained(),
            };
            group.bench_with_input(
                BenchmarkId::new(family, schema.size()),
                &schema,
                |b, schema| b.iter(|| ConsistencyChecker::new(schema).check().is_consistent()),
            );
        }
    }
    group.finish();
}

fn bench_witness(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency/witness");
    for n in [10usize, 40] {
        let mut g = SchemaGenerator::new(SchemaParams { seed: 1, ..SchemaParams::sized(n) });
        let schema = g.consistent();
        group.bench_with_input(BenchmarkId::new("chase", n), &schema, |b, schema| {
            b.iter(|| WitnessBuilder::new(schema).build().map(|d| d.len()))
        });
    }
    group.finish();
}

fn bench_paper_schema(c: &mut Criterion) {
    let schema = bschema_core::paper::white_pages_schema();
    c.bench_function("consistency/white_pages", |b| {
        b.iter(|| ConsistencyChecker::new(&schema).check().is_consistent())
    });
}

criterion_group!(benches, bench_closure, bench_witness, bench_paper_schema);
criterion_main!(benches);
