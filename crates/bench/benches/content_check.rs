//! §3.1 bench: per-entry content-schema checking throughput — the
//! O(|class(e)|·depth(H) + |val(e)| + Σ|α(c)|) bound in practice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bschema_bench::org_of_size;
use bschema_core::legality::content;
use bschema_core::paper::white_pages_schema;

fn bench_content(c: &mut Criterion) {
    let schema = white_pages_schema();
    let mut group = c.benchmark_group("content/per_entry");
    for n in [1_000usize, 10_000] {
        let org = org_of_size(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("check_instance", n), &org, |b, org| {
            b.iter(|| {
                let mut out = Vec::new();
                content::check_instance(&schema, &org.dir, false, &mut out);
                out
            })
        });
        group.bench_with_input(BenchmarkId::new("with_value_validation", n), &org, |b, org| {
            b.iter(|| {
                let mut out = Vec::new();
                content::check_instance(&schema, &org.dir, true, &mut out);
                out
            })
        });
    }
    group.finish();
}

fn bench_single_entry(c: &mut Criterion) {
    use bschema_directory::EntryId;
    let schema = white_pages_schema();
    let org = org_of_size(1_000);
    let (id, entry) = org
        .dir
        .iter()
        .find(|(_, e)| e.has_class("researcher"))
        .map(|(id, e)| (id, e.clone()))
        .expect("generated org has researchers");
    let _ = id;
    c.bench_function("content/single_researcher_entry", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            content::check_entry(&schema, EntryId::from_index(0), &entry, &mut out);
            out
        })
    });
}

criterion_group!(benches, bench_content, bench_single_entry);
criterion_main!(benches);
