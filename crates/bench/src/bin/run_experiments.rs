//! Regenerates every table/figure-level result of the paper as text tables.
//!
//! Usage: `run_experiments [t31|q9|t42|f4|f5|t52|qopt|srv|mon|rec|evo|all] [--quick] [--out <path>]`
//!
//! The paper (EDBT 2000) reports no absolute measurements — its evaluation
//! artefacts are the worked example (Figures 1–3), the reduction tables
//! (Figures 4–5), the inference system (Figures 6–7) and the complexity
//! theorems (3.1, 4.2, 5.2). This harness regenerates each: the functional
//! artefacts are printed verbatim from the implementation, and each
//! complexity claim is measured so the predicted *shape* (linear vs
//! quadratic, Δ vs full, polynomial) is visible in the numbers.

use bschema_bench::{fmt_us, org_of_size, time_median_us, Table, SIZES};
use bschema_core::consistency::ConsistencyChecker;
use bschema_core::legality::{translate, LegalityChecker, LegalityOptions};
use bschema_core::paper::{white_pages_instance, white_pages_schema};
use bschema_core::schema::{DirectorySchema, ForbidKind, RelKind};
use bschema_core::updates::{
    deletion_needs_recheck, insertion_delta_query, insertion_delta_query_forbidden,
    IncrementalChecker,
};
use bschema_obs::Recorder;
use bschema_query::{evaluate, evaluate_naive, EvalContext, Query};
use bschema_workload::{SchemaGenerator, SchemaParams, TxGenerator, TxParams};

/// Every `BENCH_JSON` payload emitted this run, in emission order, so
/// `--out <path>` can also persist the machine-readable results as one
/// JSON array for downstream tooling (CI trend lines, notebooks).
fn bench_lines() -> &'static std::sync::Mutex<Vec<String>> {
    static LINES: std::sync::OnceLock<std::sync::Mutex<Vec<String>>> = std::sync::OnceLock::new();
    LINES.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// Prints one machine-readable `BENCH_JSON {...}` line and records the
/// payload for `--out`.
fn emit_bench_line(payload: String) {
    println!("BENCH_JSON {payload}");
    bench_lines().lock().expect("bench line collector").push(payload);
}

/// Emits a `BENCH_JSON` line carrying the engine counters collected by
/// an (untimed) instrumented pass, so the measured timings above it can
/// be correlated with operation counts — entries content-checked,
/// Figure 4 queries evaluated, Δ-queries per Figure 5 row — without
/// re-deriving them from the instance.
fn emit_bench_json(experiment: &str, n: usize, recorder: &Recorder) {
    emit_bench_line(format!(
        "{{\"experiment\":{},\"n\":{n},\"metrics\":{}}}",
        bschema_obs::json::escape(experiment),
        recorder.to_json()
    ));
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            match it.next() {
                Some(path) => out_path = Some(path),
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            }
        } else {
            args.push(arg);
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let exp =
        args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| "all".to_owned());

    let runs = if quick { 3 } else { 9 };
    let sizes: Vec<usize> = if quick { vec![100, 1_000] } else { SIZES.to_vec() };

    match exp.as_str() {
        "f1" => exp_f1(),
        "f4" => exp_f4(),
        "f5" => exp_f5(),
        "t31" => exp_t31(&sizes, runs),
        "q9" => exp_q9(&sizes, runs),
        "t42" => exp_t42(&sizes, runs),
        "t52" => exp_t52(runs, quick),
        "qopt" => exp_qopt(&sizes, runs),
        "srv" => exp_srv(quick),
        "mon" => exp_mon(quick),
        "rec" => exp_rec(quick),
        "evo" => exp_evo(quick),
        "all" => {
            exp_f1();
            exp_f4();
            exp_f5();
            exp_t31(&sizes, runs);
            exp_q9(&sizes, runs);
            exp_t42(&sizes, runs);
            exp_t52(runs, quick);
            exp_qopt(&sizes, runs);
            exp_srv(quick);
            exp_mon(quick);
            exp_rec(quick);
            exp_evo(quick);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; use t31|q9|t42|f1|f4|f5|t52|qopt|srv|mon|rec|evo|all"
            );
            std::process::exit(2);
        }
    }

    if let Some(path) = out_path {
        let lines = bench_lines().lock().expect("bench line collector");
        let mut doc = String::from("[\n");
        doc.push_str(&lines.iter().map(|l| format!("  {l}")).collect::<Vec<_>>().join(",\n"));
        doc.push_str("\n]\n");
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path:?}: {e}");
            std::process::exit(2);
        }
        println!("wrote {} BENCH_JSON record(s) to {path}", lines.len());
    }
}

/// Figures 1–3: the worked example checks out.
fn exp_f1() {
    println!("== F1-F3: the paper's worked example (Figures 1-3) ==");
    let schema = white_pages_schema();
    let (dir, _) = white_pages_instance();
    let consistency = ConsistencyChecker::new(&schema).check();
    let report = LegalityChecker::new(&schema).with_value_validation(true).check(&dir);
    println!("schema: {} ({} elements)", schema.name().unwrap_or("?"), schema.size());
    println!("schema consistent (Theorem 5.2): {}", consistency.is_consistent());
    println!("Figure 1 instance entries: {}", dir.len());
    println!("Figure 1 legal w.r.t. Figures 2-3 (paper section 2.3): {}", report.is_legal());
    println!();
}

/// Figure 4: the structure-element → query translation table.
fn exp_f4() {
    println!("== F4: structure schema -> hierarchical selection queries (Figure 4) ==");
    let schema = white_pages_schema();
    let mut table = Table::new(["schema element", "query (must be empty unless noted)"]);
    for class in schema.structure().required_classes() {
        let q = translate::required_class_query(&schema, class);
        table.row([
            format!("◇{}", schema.classes().name(class)),
            format!("{q}   [must be NON-empty]"),
        ]);
    }
    for rel in schema.structure().required_rels() {
        let q = translate::required_rel_query(&schema, rel);
        table.row([schema.display_required(rel), q.to_string()]);
    }
    for rel in schema.structure().forbidden_rels() {
        let q = translate::forbidden_rel_query(&schema, rel);
        table.row([schema.display_forbidden(rel), q.to_string()]);
    }
    println!("{}", table.render());
}

/// The white-pages schema extended so every Figure 5 row is exercised: the
/// paper's schema covers de/pa/an required and ch forbidden; this adds a
/// required-child row (`orgUnit →ch person`, satisfied by the generator:
/// every unit has a direct person child) and a forbidden-descendant row.
fn figure5_schema() -> DirectorySchema {
    bschema_core::paper::white_pages_schema_builder()
        .require_rel("orgUnit", RelKind::Child, "person")
        .and_then(|b| b.forbid_rel("organization", ForbidKind::Descendant, "organization"))
        .map(|b| b.build())
        .expect("figure-5 schema extension is well-formed")
}

/// Figure 5: the incremental-testability table, printed from the
/// implementation.
fn exp_f5() {
    println!("== F5: incremental testability of structural relationships (Figure 5) ==");
    let schema = figure5_schema();
    let mut table =
        Table::new(["element", "insert?", "insertion Δ-query", "delete?", "deletion strategy"]);
    for rel in schema.structure().required_rels() {
        let q = insertion_delta_query(&schema, rel);
        let (del_ok, del_strategy) = if deletion_needs_recheck(rel.kind) {
            ("no", "full recheck on D−ΔD".to_owned())
        } else {
            ("yes", "nothing to check (all [∅])".to_owned())
        };
        table.row([
            schema.display_required(rel),
            "yes".to_owned(),
            q.to_string(),
            del_ok.to_owned(),
            del_strategy,
        ]);
    }
    for rel in schema.structure().forbidden_rels() {
        let q = insertion_delta_query_forbidden(&schema, rel);
        table.row([
            schema.display_forbidden(rel),
            "yes".to_owned(),
            q.to_string(),
            "yes".to_owned(),
            "nothing to check (all [∅])".to_owned(),
        ]);
    }
    table.row([
        "◇c (required class)".to_owned(),
        "yes".to_owned(),
        "nothing to check".to_owned(),
        "yes*".to_owned(),
        "*with per-class counts (section 4.2)".to_owned(),
    ]);
    println!("{}", table.render());
}

/// Theorem 3.1: legality testing is linear in |D|; the naive pairwise
/// checker is quadratic.
fn exp_t31(sizes: &[usize], runs: usize) {
    println!("== T3.1: legality testing — query reduction (linear) vs traversal vs pairwise strawman (quadratic) ==");
    let schema = white_pages_schema();
    let checker = LegalityChecker::new(&schema);
    let par_checker = LegalityChecker::new(&schema).with_options(LegalityOptions::parallel(0));
    let mut table = Table::new([
        "|D|",
        "fast (queries)",
        "fast parallel",
        "fast/par",
        "traversal",
        "pairwise (strawman)",
        "pairwise/fast",
        "legal",
    ]);
    for &n in sizes {
        let org = org_of_size(n);
        let fast = time_median_us(runs, || checker.check(&org.dir));
        let par = time_median_us(runs, || par_checker.check(&org.dir));
        let traversal = time_median_us(runs.min(3), || checker.check_naive(&org.dir));
        // The quadratic strawman becomes painful quickly; cap its input.
        let pairwise = if n <= 10_000 {
            Some(time_median_us(runs.min(3), || checker.check_pairwise(&org.dir)))
        } else {
            None
        };
        let legal = checker.check(&org.dir).is_legal();
        table.row([
            n.to_string(),
            fmt_us(fast),
            fmt_us(par),
            format!("{:.1}x", fast / par),
            fmt_us(traversal),
            pairwise.map_or("-".to_owned(), fmt_us),
            pairwise.map_or("-".to_owned(), |p| format!("{:.1}x", p / fast)),
            legal.to_string(),
        ]);

        let recorder = Recorder::new();
        LegalityChecker::new(&schema)
            .with_options(LegalityOptions::parallel(0))
            .with_probe(&recorder)
            .check(&org.dir);
        emit_bench_json("t31", n, &recorder);
    }
    println!("{}", table.render());
}

/// The \[9\] substrate claim: hierarchical selection queries evaluate in
/// O(|Q|·|D|) with the interval-merge engine vs O(|Q|·|D|²)-ish naive.
fn exp_q9(sizes: &[usize], runs: usize) {
    println!("== Q9: hierarchical query evaluation, interval-merge vs naive (per operator) ==");
    type QueryMaker = fn() -> Query;
    let ops: [(&str, QueryMaker); 5] = [
        ("σc (child)", || {
            Query::object_class("orgUnit").with_child(Query::object_class("person"))
        }),
        ("σp (parent)", || {
            Query::object_class("person").with_parent(Query::object_class("orgUnit"))
        }),
        ("σd (descendant)", || {
            Query::object_class("orgGroup").with_descendant(Query::object_class("person"))
        }),
        ("σa (ancestor)", || {
            Query::object_class("person").with_ancestor(Query::object_class("organization"))
        }),
        ("σ? (paper Q1)", || {
            Query::object_class("orgGroup").minus(
                Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
            )
        }),
    ];
    let mut table =
        Table::new(["operator", "|D|", "interval", "naive", "naive/interval", "|result|"]);
    for (name, make) in ops {
        for &n in sizes {
            let org = org_of_size(n);
            let ctx = EvalContext::new(&org.dir);
            let q = make();
            let fast = time_median_us(runs, || evaluate(&ctx, &q));
            let naive = time_median_us(runs.min(3), || evaluate_naive(&ctx, &q));
            let result = evaluate(&ctx, &q).len();
            table.row([
                name.to_owned(),
                n.to_string(),
                fmt_us(fast),
                fmt_us(naive),
                format!("{:.1}x", naive / fast),
                result.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}

/// Theorem 4.2 / Figure 5 measured: incremental Δ-checks vs full rechecks
/// after a small subtree insertion and deletion, as |D| grows.
fn exp_t42(sizes: &[usize], runs: usize) {
    println!("== T4.2: incremental update checking, Δ-check vs full recheck ==");
    let schema = figure5_schema();
    let full = LegalityChecker::new(&schema);
    let incremental = IncrementalChecker::new(&schema);
    let mut table = Table::new([
        "|D|",
        "insert Δ-check",
        "insert full",
        "ins full/Δ",
        "delete Δ-check",
        "delete full",
        "del full/Δ",
    ]);
    for &n in sizes {
        // Insertion: apply one legal ~5-entry subtree, then time both checks
        // on the post-insert instance.
        let mut org = org_of_size(n);
        let mut txgen = TxGenerator::new(TxParams::default());
        let tx = txgen.legal_insertion(&org);
        let normalized = tx.normalize(&org.dir).expect("generated tx is valid");
        let root = normalized.insertions[0].apply(&mut org.dir).expect("valid tx applies")[0];
        org.dir.prepare();
        assert!(full.check(&org.dir).is_legal(), "insertion fixture must stay legal");
        let ins_delta = time_median_us(runs, || incremental.check_insertion(&org.dir, root));
        let ins_full = time_median_us(runs, || full.check(&org.dir));
        let recorder = Recorder::new();
        IncrementalChecker::new(&schema).with_probe(&recorder).check_insertion(&org.dir, root);
        emit_bench_json("t42.insert", n, &recorder);

        // Deletion: remove one safely-deletable person, then time both
        // checks on the post-delete instance.
        let mut org = org_of_size(n);
        let tx =
            txgen.legal_deletion(&org, &org.dir).expect("generated orgs have deletable persons");
        let normalized = tx.normalize(&org.dir).expect("valid");
        let removed: Vec<_> = normalized
            .deletion_roots
            .iter()
            .flat_map(|&r| org.dir.remove_subtree(r).expect("validated"))
            .map(|(_, e)| e)
            .collect();
        org.dir.prepare();
        assert!(full.check(&org.dir).is_legal(), "deletion fixture must stay legal");
        let del_delta = time_median_us(runs, || incremental.check_deletion(&org.dir, &removed));
        let del_full = time_median_us(runs, || full.check(&org.dir));
        let recorder = Recorder::new();
        IncrementalChecker::new(&schema).with_probe(&recorder).check_deletion(&org.dir, &removed);
        emit_bench_json("t42.delete", n, &recorder);

        table.row([
            n.to_string(),
            fmt_us(ins_delta),
            fmt_us(ins_full),
            format!("{:.1}x", ins_full / ins_delta),
            fmt_us(del_delta),
            fmt_us(del_full),
            format!("{:.1}x", del_full / del_delta),
        ]);
    }
    println!("{}", table.render());
    println!("note: the deletion Δ-check still pays the Figure 5 'no' rows (ch/de require");
    println!("a full recheck of those elements); its advantage is skipping content, ◇c,");
    println!("pa/an-required and all forbidden elements.\n");
}

/// Theorem 5.2: consistency checking is polynomial in the schema size.
fn exp_t52(runs: usize, quick: bool) {
    println!("== T5.2: schema consistency checking, closure time vs schema size ==");
    let sizes: Vec<usize> = if quick { vec![10, 40] } else { vec![10, 20, 40, 80, 160, 320] };
    let mut table =
        Table::new(["schema size", "family", "closure time", "closure |elements|", "consistent"]);
    for &n in &sizes {
        for family in ["consistent", "inconsistent", "unconstrained"] {
            let make = |seed: u64| {
                let mut g = SchemaGenerator::new(SchemaParams { seed, ..SchemaParams::sized(n) });
                match family {
                    "consistent" => g.consistent(),
                    "inconsistent" => g.inconsistent(),
                    _ => g.unconstrained(),
                }
            };
            let schema = make(1);
            let us = time_median_us(runs, || ConsistencyChecker::new(&schema).check());
            let result = ConsistencyChecker::new(&schema).check();
            table.row([
                schema.size().to_string(),
                family.to_owned(),
                fmt_us(us),
                result.closure_size().to_string(),
                result.is_consistent().to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    // The §5.1 headline example, with its proof.
    let schema = DirectorySchema::builder()
        .core_class("c1", "top")
        .and_then(|b| b.core_class("c2", "top"))
        .and_then(|b| b.require_class("c1"))
        .and_then(|b| b.require_rel("c1", RelKind::Child, "c2"))
        .and_then(|b| b.require_rel("c2", RelKind::Descendant, "c1"))
        .map(|b| b.build())
        .expect("well-formed");
    let result = ConsistencyChecker::new(&schema).check();
    println!(
        "section 5.1 example (◇c1, c1 →ch c2, c2 →de c1): consistent = {}",
        result.is_consistent()
    );
    println!("derivation of ◇∅:\n{}", result.explain_inconsistency().unwrap_or_default());
}

/// The paper's §7 future work, measured: schema-aware query rewriting on
/// legal instances (see `bschema_core::qopt`).
fn exp_qopt(sizes: &[usize], runs: usize) {
    use bschema_core::qopt::SchemaAwareOptimizer;
    println!("== QOPT: schema-aware query optimization (paper section 7 future work) ==");
    let schema = white_pages_schema();
    let optimizer = SchemaAwareOptimizer::new(&schema);
    type QueryMaker = fn() -> Query;
    let cases: [(&str, QueryMaker); 4] = [
        ("σd known-required (orgGroup →de person)", || {
            Query::object_class("orgGroup").with_descendant(Query::object_class("person"))
        }),
        ("σ? legality query of a schema element", || {
            Query::object_class("orgGroup").minus(
                Query::object_class("orgGroup").with_descendant(Query::object_class("person")),
            )
        }),
        ("∩ of subclass pair (researcher ∩ person)", || {
            Query::object_class("researcher").intersect(Query::object_class("person"))
        }),
        ("σc known-forbidden (person →ch top)", || {
            Query::object_class("person").with_child(Query::object_class("top"))
        }),
    ];
    let mut table =
        Table::new(["query", "|D|", "raw eval", "optimized eval", "speedup", "|Q| raw→opt"]);
    for (name, make) in cases {
        for &n in sizes {
            let org = org_of_size(n);
            let ctx = EvalContext::new(&org.dir);
            let raw = make();
            let optimized = optimizer.optimize(raw.clone());
            assert_eq!(
                evaluate(&ctx, &raw),
                evaluate(&ctx, &optimized),
                "rewrite must preserve semantics on legal instances"
            );
            let t_raw = time_median_us(runs, || evaluate(&ctx, &raw));
            let t_opt = time_median_us(runs, || evaluate(&ctx, &optimized));
            table.row([
                name.to_owned(),
                n.to_string(),
                fmt_us(t_raw),
                fmt_us(t_opt),
                format!("{:.1}x", t_raw / t_opt.max(0.01)),
                format!("{}→{}", raw.size(), optimized.size()),
            ]);
        }
    }
    println!("{}", table.render());
}

/// SRV: wire-frontend throughput at 1, 4 and 8 workers. Not a paper
/// artefact — the deployment sanity number for `bschema-server`:
/// snapshot-backed reads should scale with the worker pool while the
/// serialized write path stays correct. Emits one `BENCH_JSON` line per
/// worker count with `req_per_s` plus the server's own counters.
fn exp_srv(quick: bool) {
    use std::sync::Arc;
    use std::time::Instant;

    use bschema_core::ManagedDirectory;
    use bschema_obs::Probe;
    use bschema_server::{Client, DirectoryService, Server, ServerConfig};

    println!("== SRV: wire-frontend throughput (loopback TCP) ==");
    let size = if quick { 300 } else { 2_000 };
    let clients = 8usize;
    let per_client = if quick { 100 } else { 400 };

    let mut table =
        Table::new(["workers", "clients", "requests", "elapsed", "req/s", "p50", "p99"]);
    for workers in [1usize, 4, 8] {
        let org = org_of_size(size);
        let managed = ManagedDirectory::with_instance(white_pages_schema(), org.dir)
            .expect("generated org is legal");
        let recorder = Arc::new(Recorder::new());
        let service = DirectoryService::new(managed)
            .with_probe(recorder.clone() as Arc<dyn Probe + Send + Sync>)
            .with_recorder(recorder.clone());
        let config = ServerConfig { threads: workers, ..ServerConfig::default() };
        let handle = Server::spawn(Arc::new(service), config).expect("bind loopback");
        let addr = handle.addr();

        let started = Instant::now();
        let mut threads = Vec::new();
        for _ in 0..clients {
            threads.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("bench client connects");
                for _ in 0..per_client {
                    client.ping().expect("ping");
                    client.search(None, "sub", "(objectClass=person)", Some(10)).expect("search");
                }
                client.unbind().expect("unbind");
            }));
        }
        for t in threads {
            t.join().expect("bench client thread");
        }
        let elapsed = started.elapsed();
        handle.shutdown();
        handle.wait();

        // +1 per client for the UNBIND round-trip.
        let requests = clients * (per_client * 2 + 1);
        let req_per_s = requests as f64 / elapsed.as_secs_f64();
        // Per-request latency quantiles from the server's own
        // log-bucketed histogram — the tail, not just the mean.
        let latency = recorder
            .metrics()
            .histogram("server.request_micros")
            .expect("server recorded request latencies");
        table.row([
            workers.to_string(),
            clients.to_string(),
            requests.to_string(),
            fmt_us(elapsed.as_micros() as f64),
            format!("{req_per_s:.0}"),
            fmt_us(latency.p50() as f64),
            fmt_us(latency.p99() as f64),
        ]);
        emit_bench_line(format!(
            "{{\"experiment\":\"srv\",\"n\":{workers},\"req_per_s\":{req_per_s:.1},\
             \"p50_us\":{},\"p99_us\":{},\"metrics\":{}}}",
            latency.p50(),
            latency.p99(),
            recorder.to_json()
        ));
    }
    println!("{}", table.render());

    // Sharded TXN throughput: 8 clients, each writing persons into its
    // own top-level organization — a shard-partitioned workload, the
    // case Theorem 4.1 says needs no coordination. On one shard every
    // commit serializes behind a single write lock and a whole-forest
    // snapshot clone; on N shards the same transactions route to
    // disjoint shards and commit in parallel, with per-shard snapshot
    // republication at 1/N the size.
    println!("== SRV: sharded TXN throughput (loopback TCP, 8 workers) ==");
    let orgs = 8usize;
    let entries_per_org = if quick { 60 } else { 150 };
    let per_client_tx = if quick { 40 } else { 150 };
    let mut table = Table::new(["shards", "clients", "txns", "elapsed", "txn/s", "p50", "p99"]);
    for shards in [1usize, 4, 8] {
        let base = bschema_workload::multi_org_base(orgs, entries_per_org, 0xBE2C4);
        let recorder = Arc::new(Recorder::new());
        let service = DirectoryService::new_sharded(white_pages_schema(), base, shards)
            .expect("multi-org base is legal")
            .with_probe(recorder.clone() as Arc<dyn Probe + Send + Sync>)
            .with_recorder(recorder.clone());
        let config = ServerConfig { threads: 8, ..ServerConfig::default() };
        let handle = Server::spawn(Arc::new(service), config).expect("bind loopback");
        let addr = handle.addr();

        let started = Instant::now();
        let mut threads = Vec::new();
        for c in 0..clients {
            threads.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("bench client connects");
                for i in 0..per_client_tx {
                    let body = format!(
                        "dn: uid=s{shards}c{c}n{i},o=org{c}\n\
                         objectClass: person\nobjectClass: top\n\
                         uid: s{shards}c{c}n{i}\nname: bench person\n"
                    );
                    let receipt = client.apply_ldif(&body).expect("bench txn commits");
                    assert_eq!(receipt.shards, 1, "partitioned workload stays single-shard");
                }
                client.unbind().expect("unbind");
            }));
        }
        for t in threads {
            t.join().expect("bench client thread");
        }
        let elapsed = started.elapsed();
        handle.shutdown();
        handle.wait();

        let txns = clients * per_client_tx;
        let req_per_s = txns as f64 / elapsed.as_secs_f64();
        let latency = recorder
            .metrics()
            .histogram("server.request_micros")
            .expect("server recorded request latencies");
        table.row([
            shards.to_string(),
            clients.to_string(),
            txns.to_string(),
            fmt_us(elapsed.as_micros() as f64),
            format!("{req_per_s:.0}"),
            fmt_us(latency.p50() as f64),
            fmt_us(latency.p99() as f64),
        ]);
        emit_bench_line(format!(
            "{{\"experiment\":\"srv-sharded\",\"n\":{shards},\
             \"req_per_s\":{req_per_s:.1},\"p50_us\":{},\"p99_us\":{},\"metrics\":{}}}",
            latency.p50(),
            latency.p99(),
            recorder.to_json()
        ));
    }
    println!("{}", table.render());
}

/// REC: what checkpointing buys at recovery time. One journal of small
/// committed transactions is replayed two ways over the same parsed
/// records: cold from the seed base (every transaction re-applies
/// through the Δ-checked path), and from a checkpoint that covers all
/// but a short tail (slot-exact snapshot restore, one legality certify,
/// then tail replay). Both paths must converge on byte-identical canonical
/// state; at |D| ≥ 100k the checkpoint path must be ≥ 5× faster.
fn exp_rec(quick: bool) {
    use bschema_core::checkpoint::{recover_with_checkpoint, Checkpoint};
    use bschema_core::journal::{Journal, JournalWriter};
    use bschema_core::updates::transaction_from_ldif;
    use bschema_core::ManagedDirectory;
    use bschema_directory::ldif::{parse_ldif_limited, LdifLimits};

    println!("== REC: crash recovery, full journal replay vs checkpoint + tail ==");
    // |D| floor of 100k in the full run; the tail is deliberately short
    // so the checkpoint path measures restore + certify, not replay.
    let (orgs, per_org, txs, tail_txs) = if quick { (4, 500, 40, 4) } else { (8, 12_500, 240, 12) };
    let schema = white_pages_schema();
    let base = bschema_workload::multi_org_base(orgs, per_org, 0x8EC0);
    let limits = LdifLimits::default();

    // Build the history: `txs` five-person transactions appended to one
    // journal, with a checkpoint captured `tail_txs` before the end.
    let mut managed = ManagedDirectory::with_instance(schema.clone(), base.clone())
        .expect("generated multi-org base is legal");
    let mut writer = JournalWriter::new();
    let mut journal_text = String::new();
    let mut ckpt_text = None;
    for i in 0..txs {
        if i == txs - tail_txs {
            ckpt_text = Some(
                Checkpoint::capture(
                    managed.instance(),
                    &schema,
                    writer.records_emitted(),
                    writer.next_tx(),
                    None,
                )
                .encode(),
            );
        }
        let mut body = String::new();
        for p in 0..5 {
            body.push_str(&format!(
                "dn: uid=rec{i}p{p},o=org{}\nobjectClass: person\nobjectClass: top\n\
                 uid: rec{i}p{p}\nname: recovery bench\n\n",
                i % orgs
            ));
        }
        let records = parse_ldif_limited(&body, &limits).expect("bench tx parses");
        let tx = transaction_from_ldif(managed.instance(), records).expect("bench tx is valid");
        let id = writer.begin(&tx);
        journal_text.push_str(&writer.take_pending());
        managed.apply(&tx).expect("bench tx is legal");
        writer.commit(id);
        journal_text.push_str(&writer.take_pending());
    }
    let ckpt_text = ckpt_text.expect("checkpoint captured mid-history");
    let journal = Journal::parse(&journal_text);
    let n = managed.len();

    let runs = if quick { 3 } else { 5 };
    let full_us = time_median_us(runs, || {
        recover_with_checkpoint(schema.clone(), base.clone(), None, &journal)
            .expect("full replay recovers")
    });
    let ckpt_us = time_median_us(runs, || {
        recover_with_checkpoint(schema.clone(), base.clone(), Some(&ckpt_text), &journal)
            .expect("checkpoint recovery recovers")
    });

    // Both paths must land on the same canonical bytes.
    let full = recover_with_checkpoint(schema.clone(), base.clone(), None, &journal)
        .expect("full replay recovers");
    let ckpt = recover_with_checkpoint(schema.clone(), base.clone(), Some(&ckpt_text), &journal)
        .expect("checkpoint recovery recovers");
    assert_eq!(
        full.managed.instance().canonical_bytes(),
        ckpt.managed.instance().canonical_bytes(),
        "full replay and checkpoint+tail recovery must converge"
    );
    assert_eq!(ckpt.report.replayed, tail_txs, "only the tail replays past the checkpoint");

    let speedup = full_us / ckpt_us.max(0.01);
    let mut table =
        Table::new(["|D|", "journal txs", "full replay", "ckpt + tail", "tail txs", "speedup"]);
    table.row([
        n.to_string(),
        txs.to_string(),
        fmt_us(full_us),
        fmt_us(ckpt_us),
        tail_txs.to_string(),
        format!("{speedup:.1}x"),
    ]);
    println!("{}", table.render());
    if n >= 100_000 {
        assert!(
            speedup >= 5.0,
            "checkpoint+tail recovery must be >= 5x faster than full replay at |D| >= 100k \
             (measured {speedup:.1}x)"
        );
    }
    emit_bench_line(format!(
        "{{\"experiment\":\"rec\",\"n\":{n},\"journal_txs\":{txs},\"tail_txs\":{tail_txs},\
         \"full_replay_us\":{full_us:.1},\"ckpt_tail_us\":{ckpt_us:.1},\
         \"speedup\":{speedup:.2}}}"
    ));
}

/// MON: what the health plane costs. The same loopback read workload
/// runs with the monitor off and on — and "on" is handicapped: 100ms
/// ticks (10× the default rate) plus an SLO so every tick also folds
/// the window into a burn rate. Each tick samples the registry, records
/// the delta into the ring and publishes one JSON frame off the request
/// path; the req/s cost must stay under 2%.
fn exp_mon(quick: bool) {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use bschema_core::ManagedDirectory;
    use bschema_obs::{Probe, SloPolicy};
    use bschema_server::{Client, DirectoryService, Monitor, MonitorConfig, Server, ServerConfig};

    println!("== MON: health-plane overhead (loopback TCP, 100ms ticks + SLO vs none) ==");
    let size = if quick { 300 } else { 1_000 };
    let clients = 4usize;
    // Long enough runs that one descheduled worker cannot move the
    // rate by whole percents: ~1s per run in the full configuration.
    let per_client = if quick { 250 } else { 2_400 };

    let run_once = |monitored: bool| -> f64 {
        let org = org_of_size(size);
        let managed = ManagedDirectory::with_instance(white_pages_schema(), org.dir)
            .expect("generated org is legal");
        let recorder = Arc::new(Recorder::new());
        let mut service = DirectoryService::new(managed)
            .with_probe(recorder.clone() as Arc<dyn Probe + Send + Sync>)
            .with_recorder(recorder.clone());
        if monitored {
            service = service.with_monitor(Arc::new(Monitor::new(MonitorConfig {
                interval: Duration::from_millis(100),
                slo: Some(SloPolicy { p99_us: Some(50_000), err_rate: Some(0.01) }),
                ..MonitorConfig::default()
            })));
        }
        let config = ServerConfig { threads: 4, ..ServerConfig::default() };
        let handle = Server::spawn(Arc::new(service), config).expect("bind loopback");
        let addr = handle.addr();

        let started = Instant::now();
        let mut threads = Vec::new();
        for _ in 0..clients {
            threads.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("bench client connects");
                for _ in 0..per_client {
                    client.ping().expect("ping");
                    client.search(None, "sub", "(objectClass=person)", Some(10)).expect("search");
                }
                client.unbind().expect("unbind");
            }));
        }
        for t in threads {
            t.join().expect("bench client thread");
        }
        let elapsed = started.elapsed();
        handle.shutdown();
        handle.wait();
        (clients * (per_client * 2 + 1)) as f64 / elapsed.as_secs_f64()
    };

    // One discarded warmup per mode first (cold caches, lazy allocator
    // arenas, and loopback socket setup all land on whichever mode runs
    // first), then a paired design: each trial runs off then on
    // back-to-back and contributes one per-pair overhead, and the
    // median pair is the reported number. Pairing cancels the slow
    // drift (thermal, container scheduling) that sank PR7's best-of-4
    // comparison — it measured -8.4% "overhead" (monitor-on *faster*),
    // i.e. noise several times the sub-1% true effect. The median of
    // adjacent-pair deltas is drift-robust and keeps the measurement
    // inside the documented <2% bound.
    run_once(false);
    run_once(true);
    let trials = if quick { 3 } else { 9 };
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(trials);
    for t in 0..trials {
        // Alternate which mode runs first within the pair: the second
        // run of a pair inherits warm state and would otherwise look
        // systematically faster.
        let (off, on) = if t % 2 == 0 {
            let off = run_once(false);
            (off, run_once(true))
        } else {
            let on = run_once(true);
            (run_once(false), on)
        };
        pairs.push((off, on));
    }
    let mut overheads: Vec<f64> = pairs.iter().map(|(off, on)| (off - on) / off * 100.0).collect();
    overheads.sort_by(|a, b| a.partial_cmp(b).expect("finite overheads"));
    let overhead_pct = overheads[overheads.len() / 2];
    let (med_off, med_on) = pairs[pairs
        .iter()
        .map(|(off, on)| (off - on) / off * 100.0)
        .position(|o| o == overhead_pct)
        .unwrap_or(0)];

    let mut table = Table::new(["mode", "req/s (median pair)"]);
    table.row(["monitor off".to_owned(), format!("{med_off:.0}")]);
    table.row(["monitor on (100ms ticks + SLO)".to_owned(), format!("{med_on:.0}")]);
    table.row(["overhead".to_owned(), format!("{overhead_pct:.2}%")]);
    println!("{}", table.render());
    emit_bench_line(format!(
        "{{\"experiment\":\"mon\",\"n\":{trials},\"req_per_s_off\":{med_off:.1},\
         \"req_per_s_on\":{med_on:.1},\"overhead_pct\":{overhead_pct:.2}}}"
    ));
}

/// EVO: what a live schema cutover costs. The incremental recheck the
/// evolution plane runs for a restricting step (`recheck_new_element` —
/// only the proposed bound is evaluated, §6.2) is measured against the
/// full §3 legality pass an offline evolution would run, at |D| ≈ 10k.
/// Then a real cutover is driven on a live `DirectoryService` under a
/// concurrent writer, and the maximum write latency the epoch swap
/// caused — the write stall an operator would observe — is recorded.
fn exp_evo(quick: bool) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use bschema_core::evolution::plan::parse_proposal;
    use bschema_core::ManagedDirectory;
    use bschema_server::DirectoryService;

    println!("== EVO: incremental cutover recheck vs full section-3 recheck ==");
    let (orgs, per_org) = if quick { (4, 250) } else { (4, 2_500) };
    let schema = white_pages_schema();
    let base = bschema_workload::multi_org_base(orgs, per_org, 0xE40);
    let n = base.len();

    // A satisfiable tighten: every generated person already sits under
    // an organization root, so requiring the ancestor is restricting
    // (it must be rechecked) but violation-free.
    let step = "require-rel person ancestor organization";
    let plan = parse_proposal(&schema, step).expect("bench proposal parses");
    assert!(!plan.is_relaxing_only(), "the bench step must be restricting");

    let runs = if quick { 3 } else { 9 };
    let incremental_us = time_median_us(runs, || {
        let report = plan.recheck(&base);
        assert!(report.is_legal(), "the tighten is satisfiable");
        report
    });
    let full_us = time_median_us(runs, || {
        let report = LegalityChecker::new(&plan.target).check(&base);
        assert!(report.is_legal(), "the tighten is satisfiable");
        report
    });
    let speedup = full_us / incremental_us.max(0.01);

    // The live cutover: one writer commits conforming persons the whole
    // time; every request is timed, so the slowest one bounds the write
    // stall the PROPOSE -> CHECK -> COMMIT sequence caused.
    let service = Arc::new(DirectoryService::new(
        ManagedDirectory::with_instance(schema.clone(), base.clone())
            .expect("generated multi-org base is legal"),
    ));
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut max_us = 0.0f64;
            let mut i = 0usize;
            while !done.load(Ordering::SeqCst) {
                let ldif = format!(
                    "dn: uid=evo{i},o=org{}\nobjectClass: person\nobjectClass: top\n\
                     uid: evo{i}\nname: evo bench\n",
                    i % 4
                );
                let t = Instant::now();
                service.apply_ldif_tx(&ldif).expect("conforming write commits during cutover");
                max_us = max_us.max(t.elapsed().as_secs_f64() * 1e6);
                i += 1;
            }
            (max_us, i)
        })
    };
    std::thread::sleep(Duration::from_millis(25));
    service.schema_propose(step).expect("bench proposal stages");
    service.schema_check().expect("the instance satisfies the tighten");
    service.schema_commit().expect("cutover commits under writes");
    std::thread::sleep(Duration::from_millis(25));
    done.store(true, Ordering::SeqCst);
    let (max_stall_us, writer_txs) = writer.join().expect("writer thread");
    assert_eq!(service.schema_epoch(), 1, "the cutover landed");
    assert!(writer_txs > 0, "the writer must overlap the cutover");

    let mut table =
        Table::new(["|D|", "incremental recheck", "full section-3", "speedup", "max write stall"]);
    table.row([
        n.to_string(),
        fmt_us(incremental_us),
        fmt_us(full_us),
        format!("{speedup:.1}x"),
        fmt_us(max_stall_us),
    ]);
    println!("{}", table.render());
    if !quick && n >= 10_000 {
        assert!(
            speedup >= 2.0,
            "the incremental cutover recheck must beat the full section-3 pass at |D| >= 10k \
             (measured {speedup:.2}x)"
        );
    }
    emit_bench_line(format!(
        "{{\"experiment\":\"evo\",\"n\":{n},\"step\":\"require-rel person ancestor organization\",\
         \"incremental_us\":{incremental_us:.1},\"full_us\":{full_us:.1},\
         \"speedup\":{speedup:.2},\"max_stall_us\":{max_stall_us:.1},\
         \"writer_txs\":{writer_txs}}}"
    ));
}
