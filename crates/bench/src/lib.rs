//! Shared harness utilities: deterministic micro-timing and paper-style
//! table rendering for the `run_experiments` binary, plus ready-made
//! fixtures for the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use bschema_workload::{OrgGenerator, OrgParams};

/// Times `f`, returning the median of `runs` wall-clock measurements in
/// microseconds. The first (warm-up) run is discarded.
pub fn time_median_us<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(runs >= 1);
    let mut samples = Vec::with_capacity(runs);
    let _warmup = f();
    for _ in 0..runs {
        let start = Instant::now();
        let out = f();
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(out);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A fixed-width text table accumulated row by row.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", row[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

pub use bschema_obs::fmt_us;

/// Standard instance sizes used across experiments.
pub const SIZES: [usize; 5] = [100, 300, 1_000, 3_000, 10_000];

/// Builds a legal white-pages org directory of roughly `n` entries
/// (seeded, prepared).
pub fn org_of_size(n: usize) -> bschema_workload::org::GeneratedOrg {
    OrgGenerator::new(OrgParams { target_entries: n, seed: 42, ..OrgParams::default() }).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["|D|", "fast", "naive"]);
        t.row(["100", "1.0µs", "10.0µs"]);
        t.row(["10000", "100.0µs", "100.00ms"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("|D|"));
        assert!(lines[2].ends_with("10.0µs"));
    }

    #[test]
    fn fmt_us_ranges() {
        assert_eq!(fmt_us(12.34), "12.3µs");
        assert_eq!(fmt_us(12_340.0), "12.34ms");
        assert_eq!(fmt_us(2_500_000.0), "2.50s");
    }

    #[test]
    fn timing_returns_positive() {
        let us = time_median_us(3, || (0..1000).sum::<u64>());
        assert!(us >= 0.0);
    }
}
