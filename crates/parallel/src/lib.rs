//! Order-preserving data-parallel helpers for the legality engine.
//!
//! The legality checks parallelised in `bschema-core` must produce
//! reports *identical* to their sequential counterparts, so every helper
//! here preserves input order: items are split into contiguous chunks,
//! chunks are processed on scoped worker threads, and the per-chunk
//! results are concatenated back in chunk order. With `threads <= 1`
//! the closure runs inline on the caller's thread — no spawn, no
//! synchronisation — so the sequential path pays nothing for the shared
//! code structure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// The number of worker threads the host offers, per
/// [`std::thread::available_parallelism`] (1 if unknown).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Resolves a requested thread count: `0` means "use
/// [`available_threads`]", anything else is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Splits `items` into at most `threads` contiguous chunks, applies `f`
/// to each chunk concurrently, and concatenates the outputs in chunk
/// order. The result is exactly `f` applied chunk-by-chunk
/// sequentially — only the wall-clock differs.
pub fn par_flat_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    par_flat_map_chunks_indexed(items, threads, |_, chunk| f(chunk))
}

/// Like [`par_flat_map_chunks`], but `f` also receives the chunk's index
/// (its position in the chunk order). The inline `threads <= 1` path
/// passes index 0. Lets instrumentation attribute per-chunk work to a
/// stable ordinal independent of worker scheduling.
///
/// Worker failure degrades gracefully: a chunk whose worker thread
/// panics is retried sequentially on the caller's thread after the
/// scope closes, so one dying worker slows the check down instead of
/// aborting it. A panic on the sequential retry (a deterministic fault,
/// not a transient one) propagates to the caller.
pub fn par_flat_map_chunks_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return f(0, items);
    }
    // Ceiling division so every chunk is non-empty and order is total.
    let chunk_len = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    let mut results: Vec<Option<Vec<R>>> = Vec::with_capacity(chunks.len());
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(i, &chunk)| {
                scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, chunk)))
                })
            })
            .collect();
        for handle in handles {
            // Outer Err = the thread died outside catch_unwind (cannot
            // happen for unwinding panics, but treat it as a failed
            // chunk rather than propagating a resume_unwind here).
            results.push(match handle.join() {
                Ok(Ok(chunk_result)) => Some(chunk_result),
                Ok(Err(_)) | Err(_) => None,
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .flat_map(|(i, slot)| slot.unwrap_or_else(|| f(i, chunks[i])))
        .collect()
}

/// Applies `f` to each item concurrently (chunked as in
/// [`par_flat_map_chunks`]) and returns the outputs in item order.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_flat_map_chunks(items, threads, |chunk| chunk.iter().map(&f).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_map_preserves_order_at_any_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let expect: Vec<u32> = items.iter().flat_map(|&x| [x * 2, x * 2 + 1]).collect();
        for threads in [1, 2, 3, 7, 64, 0] {
            let got = par_flat_map_chunks(&items, threads, |chunk| {
                chunk.iter().flat_map(|&x| [x * 2, x * 2 + 1]).collect()
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<i64> = (-50..50).collect();
        let expect: Vec<i64> = items.iter().map(|x| x * x).collect();
        assert_eq!(par_map(&items, 4, |x| x * x), expect);
        assert_eq!(par_map(&items, 1, |x| x * x), expect);
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[9u8], 8, |x| *x), vec![9]);
    }

    #[test]
    fn indexed_chunks_see_their_position() {
        use std::sync::Mutex;
        let items: Vec<u32> = (0..10).collect();
        let seen = Mutex::new(Vec::new());
        let got = par_flat_map_chunks_indexed(&items, 4, |i, chunk| {
            seen.lock().unwrap().push((i, chunk.to_vec()));
            chunk.to_vec()
        });
        assert_eq!(got, items);
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        // 10 items over 4 threads -> chunks of 3: [0..3, 3..6, 6..9, 9..10].
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], (0, vec![0, 1, 2]));
        assert_eq!(seen[3], (3, vec![9]));
        // Inline path reports index 0.
        let inline = par_flat_map_chunks_indexed(&items, 1, |i, chunk| {
            assert_eq!(i, 0);
            chunk.to_vec()
        });
        assert_eq!(inline, items);
    }

    #[test]
    fn panicking_worker_chunk_is_retried_sequentially() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Quiet the expected worker-panic backtrace spam.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u32> = (0..20).collect();
        let attempts = AtomicU64::new(0);
        let got = par_flat_map_chunks_indexed(&items, 4, |i, chunk| {
            // Chunk 2 dies on its first attempt only (a transient fault).
            if i == 2 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("worker down");
            }
            chunk.iter().map(|&x| x * 10).collect()
        });
        std::panic::set_hook(prev);
        let expect: Vec<u32> = items.iter().map(|&x| x * 10).collect();
        assert_eq!(got, expect);
        assert_eq!(attempts.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn thread_resolution() {
        assert!(available_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), available_threads());
    }
}
