//! A fuller corporate white-pages workflow driven by the text formats:
//! the bounding-schema is written in the schema DSL, the directory content
//! arrives as LDIF, violations are reported with entry DNs, and the fixed
//! content is served through a `ManagedDirectory`.
//!
//! Run with: `cargo run --example white_pages`

use bschema_core::legality::LegalityChecker;
use bschema_core::managed::ManagedDirectory;
use bschema_core::schema::dsl::parse_schema;
use bschema_directory::ldif;
use bschema_query::{parse_filter, Query};

const SCHEMA_TEXT: &str = r#"
schema "acme white pages"

attribute o : directoryString
attribute ou : directoryString
attribute uid : directoryString single
attribute name : directoryString
attribute mail : ia5String
attribute telephoneNumber : telephoneNumber
attribute uri : uri
attribute location : directoryString

class orgGroup extends top
  aux online
class organization extends orgGroup
  require o
class orgUnit extends orgGroup
  require ou
  allow location
class person extends top
  aux online
  require name uid
  allow telephoneNumber
class staffMember extends person
class researcher extends person

auxiliary online
  allow mail uri

require-class organization
require-class person
require orgGroup descendant person
require orgUnit parent orgGroup
forbid person child top
"#;

const LDIF_TEXT: &str = r#"
version: 1

dn: o=acme
objectClass: organization
objectClass: orgGroup
objectClass: online
objectClass: top
o: acme
uri: http://www.acme.example/

dn: ou=engineering,o=acme
objectClass: orgUnit
objectClass: orgGroup
objectClass: top
ou: engineering
location: building 7

dn: uid=ada,ou=engineering,o=acme
objectClass: researcher
objectClass: person
objectClass: online
objectClass: top
uid: ada
name: Ada Lovelace
mail: ada@acme.example

dn: uid=grace,ou=engineering,o=acme
objectClass: staffMember
objectClass: person
objectClass: top
uid: grace
name: Grace Hopper
telephoneNumber: +1 212 555 0100

dn: ou=sales,o=acme
objectClass: orgUnit
objectClass: orgGroup
objectClass: top
ou: sales

dn: uid=nameless,ou=sales,o=acme
objectClass: person
objectClass: top
uid: nameless
"#;

fn main() {
    // Parse the schema DSL (yields both the bounding-schema and the
    // attribute type registry).
    let parsed = parse_schema(SCHEMA_TEXT).expect("schema text is well-formed");
    println!(
        "loaded schema {:?}: {} classes, {} structure elements",
        parsed.schema.name().unwrap(),
        parsed.schema.classes().len(),
        parsed.schema.structure().len()
    );

    // Load the LDIF into an instance over that attribute registry.
    let mut dir = bschema_directory::DirectoryInstance::new(parsed.registry.clone());
    let loaded = ldif::load_into(&mut dir, LDIF_TEXT).expect("LDIF is well-formed");
    dir.prepare();
    println!("loaded {loaded} entries from LDIF\n");

    // Validate; the `nameless` person is missing its required name.
    let checker = LegalityChecker::new(&parsed.schema).with_value_validation(true);
    let report = checker.check(&dir);
    println!("initial content: {report}");
    for violation in report.violations() {
        if let Some(entry) = violation.entry() {
            if let Ok(dn) = dir.dn(entry) {
                println!("  at dn: {dn}");
            }
        }
    }
    println!();

    // Fix the violation and wrap the instance in a ManagedDirectory, which
    // enforces the schema from here on.
    let nameless =
        dir.lookup_dn(&"uid=nameless,ou=sales,o=acme".parse().unwrap()).expect("entry exists");
    dir.entry_mut(nameless).unwrap().add_value("name", "Anon Y. Mouse");
    dir.prepare();
    let mut managed =
        ManagedDirectory::with_instance(parsed.schema.clone(), dir).expect("now legal");
    println!(
        "after fix: managed directory with {} entries, legal = {}\n",
        managed.len(),
        managed.is_legal()
    );

    // Search with an RFC 2254 filter inside a hierarchical query: online
    // researchers somewhere below the organization.
    let filter = parse_filter("(&(objectClass=researcher)(mail=*))").unwrap();
    let q = Query::select(filter).with_ancestor(Query::object_class("organization"));
    for id in managed.query(&q) {
        let entry = managed.instance().entry(id).unwrap();
        println!(
            "online researcher: {} <{}>",
            entry.first_value("name").unwrap_or("?"),
            entry.first_value("mail").unwrap_or("?")
        );
    }
    println!();

    // Attempts to break the schema bounce off with a rolled-back error.
    let err = managed
        .delete_subtree(
            managed
                .instance()
                .lookup_dn(&"uid=ada,ou=engineering,o=acme".parse().unwrap())
                .unwrap(),
        )
        .and(
            managed.delete_subtree(
                managed
                    .instance()
                    .lookup_dn(&"uid=grace,ou=engineering,o=acme".parse().unwrap())
                    .unwrap(),
            ),
        );
    match err {
        Ok(()) => println!("deletions accepted (engineering still has people elsewhere)"),
        Err(e) => println!("deletion rejected:\n{e}"),
    }

    // Round-trip the final content back to LDIF.
    let out = ldif::dump(managed.instance()).expect("all entries are named");
    println!("\nfinal directory as LDIF ({} bytes):\n{}", out.len(), out);
}
