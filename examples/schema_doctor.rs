//! Schema doctor: §5 consistency checking with human-readable proofs.
//!
//! Feeds a series of bounding-schemas — including the paper's §5.1 and §5.2
//! examples — to the inference engine, prints the verdict, the ◇∅
//! derivation for inconsistent ones, and a constructed witness instance for
//! consistent ones.
//!
//! Run with: `cargo run --example schema_doctor`

use bschema_core::consistency::{build_witness, ConsistencyChecker};
use bschema_core::legality::LegalityChecker;
use bschema_core::schema::dsl::parse_schema;

const CASES: &[(&str, &str)] = &[
    (
        "section 5.1 simple cycle",
        "class c1 extends top\nclass c2 extends top\nrequire-class c1\nrequire c1 child c2\nrequire c2 descendant c1\n",
    ),
    (
        "section 5.1 cycle, no required class (footnote 3: consistent)",
        "class c1 extends top\nclass c2 extends top\nrequire c1 child c2\nrequire c2 descendant c1\n",
    ),
    (
        "section 5.1 subclass-interaction cycle",
        concat!(
            "class c2 extends top\n",
            "class c1 extends c2\n",
            "class c4 extends top\n",
            "class c3 extends c4\n",
            "class c5 extends c1\n",
            "require-class c1\n",
            "require c2 parent c3\n",
            "require c4 ancestor c5\n",
        ),
    ),
    (
        "section 5.2 direct contradiction",
        "class c1 extends top\nclass c2 extends top\nrequire-class c1\nrequire c1 descendant c2\nforbid c1 descendant c2\n",
    ),
    (
        "two incomparable required parents",
        "class a extends top\nclass b extends top\nclass c extends top\nrequire-class a\nrequire a parent b\nrequire a parent c\n",
    ),
    (
        "a healthy org schema",
        concat!(
            "class orgGroup extends top\n",
            "class organization extends orgGroup\n",
            "class orgUnit extends orgGroup\n",
            "class person extends top\n",
            "require-class organization\n",
            "require-class person\n",
            "require orgGroup descendant person\n",
            "forbid person child top\n",
        ),
    ),
];

fn main() {
    for (name, text) in CASES {
        println!("=== {name} ===");
        let parsed = parse_schema(text).expect("case text is well-formed");
        let result = ConsistencyChecker::new(&parsed.schema).check();
        println!(
            "closure: {} elements; consistent: {}",
            result.closure_size(),
            result.is_consistent()
        );
        if let Some(proof) = result.explain_inconsistency() {
            println!("why no legal instance can exist:\n{proof}");
        } else {
            match build_witness(&parsed.schema) {
                Ok(witness) => {
                    let legal = LegalityChecker::new(&parsed.schema).check(&witness).is_legal();
                    println!(
                        "witness instance: {} entries (verified legal: {legal})",
                        witness.len()
                    );
                    for (id, entry) in witness.iter() {
                        let depth = witness.forest().depth(id);
                        println!("  {}{}", "    ".repeat(depth), entry.classes().join(","));
                    }
                }
                Err(e) => println!("witness construction failed: {e}"),
            }
        }
        println!();
    }
}
