//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 2–3 bounding-schema and the Figure 1 white-pages
//! instance, then exercises all three algorithm families: consistency (§5),
//! legality (§3), and incremental update checking (§4).
//!
//! Run with: `cargo run --example quickstart`

use bschema_core::consistency::ConsistencyChecker;
use bschema_core::legality::LegalityChecker;
use bschema_core::paper::{white_pages_instance, white_pages_schema};
use bschema_core::updates::{apply_and_check, Transaction};
use bschema_directory::Entry;
use bschema_query::{evaluate, EvalContext, Query};

fn main() {
    // ----- the schema (Figures 2 + 3) -----
    let schema = white_pages_schema();
    println!("schema: {:?}, {} elements", schema.name().unwrap(), schema.size());

    // §5: is it consistent (satisfiable by some finite directory)?
    let consistency = ConsistencyChecker::new(&schema).check();
    println!("consistent: {}\n", consistency.is_consistent());

    // ----- the instance (Figure 1) -----
    let (mut dir, ids) = white_pages_instance();
    println!("instance: {} entries, e.g. laks =", dir.len());
    println!("{}\n", dir.entry(ids.laks).unwrap());

    // §3: legality.
    let checker = LegalityChecker::new(&schema).with_value_validation(true);
    let report = checker.check(&dir);
    println!("Figure 1 legal w.r.t. Figures 2-3: {}\n", report.is_legal());

    // A hierarchical query (the algebra of reference [9]): all persons under
    // the organization.
    let q = Query::object_class("person").with_ancestor(Query::object_class("organization"));
    let hits = evaluate(&EvalContext::new(&dir), &q);
    println!("query {q}");
    for id in hits {
        println!("  -> {}", dir.entry(id).unwrap().first_value("uid").unwrap_or("?"));
    }
    println!();

    // §4: a legal transaction — a new voice research unit with two people —
    // checked incrementally (Theorem 4.1 subtree granularity + Figure 5
    // Δ-queries).
    let mut tx = Transaction::new();
    let unit = tx.insert_under(
        ids.att_labs,
        Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "voice").build(),
    );
    for uid in ["alice", "bob"] {
        tx.insert_under_new(
            unit,
            Entry::builder()
                .classes(["researcher", "person", "top"])
                .attr("uid", uid)
                .attr("name", format!("{uid} example"))
                .build(),
        );
    }
    let applied = apply_and_check(&schema, &mut dir, &tx).expect("structurally valid tx");
    println!("insert voice unit + 2 researchers: legal = {}", applied.report.is_legal());
    println!("directory now has {} entries\n", dir.len());

    // An illegal transaction — an orgUnit under a person — is caught by the
    // Figure 5 Δ-queries (person ↛ch top, orgUnit →pa orgGroup).
    let mut bad = Transaction::new();
    bad.insert_under(
        ids.suciu,
        Entry::builder().classes(["orgUnit", "orgGroup", "top"]).attr("ou", "oops").build(),
    );
    let applied = apply_and_check(&schema, &mut dir, &bad).expect("structurally valid tx");
    println!("insert orgUnit under suciu: legal = {}", applied.report.is_legal());
    print!("{}", applied.report);
}
