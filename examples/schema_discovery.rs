//! Schema discovery: from a descriptive to a prescriptive schema (§6.2).
//!
//! Mines the regularities of an existing directory into a suggested
//! bounding-schema, shows that the suggestion accepts its source, then uses
//! it prescriptively: a deviant future update is rejected.
//!
//! Run with: `cargo run --example schema_discovery`

use bschema_core::discover::{suggest_schema, DiscoveryOptions};
use bschema_core::legality::LegalityChecker;
use bschema_core::managed::ManagedDirectory;
use bschema_core::paper::white_pages_instance;
use bschema_core::schema::dsl::print_schema;
use bschema_directory::Entry;

fn main() {
    // An existing, unmanaged directory (the paper's Figure 1).
    let (dir, ids) = white_pages_instance();
    println!("observing {} entries...\n", dir.len());

    // Mine the tightest bounds the data satisfies.
    let options = DiscoveryOptions { forbidden: true, ..Default::default() };
    let suggested = suggest_schema(&dir, &options);
    println!(
        "suggested schema: {} classes, {} structure elements, {} total elements",
        suggested.classes().len(),
        suggested.structure().len(),
        suggested.size()
    );
    println!("\n--- suggested schema (DSL) ---\n{}", print_schema(&suggested, None));

    // Soundness: the suggestion accepts the data it was mined from.
    let report = LegalityChecker::new(&suggested).check(&dir);
    println!("source instance legal under suggestion: {}\n", report.is_legal());

    // Used prescriptively, it rejects structure the data never exhibited.
    let mut managed = ManagedDirectory::with_instance(suggested, dir)
        .expect("mined schemas are consistent and accept their source");
    match managed.insert_under(
        ids.laks,
        Entry::builder().classes(["orgunit", "orggroup", "top"]).attr("ou", "odd").build(),
    ) {
        Err(e) => println!("deviant update rejected, as the mined bounds prescribe:\n{e}"),
        Ok(_) => println!("update accepted"),
    }

    // Conforming growth still works: a researcher in an existing unit.
    managed
        .insert_under(
            ids.databases,
            Entry::builder()
                .classes(["researcher", "person", "top", "online"])
                .attr("uid", "milo")
                .attr("name", "t milo")
                .attr("mail", "milo@example.com")
                .build(),
        )
        .expect("conforming entries are accepted");
    println!("\nconforming insert accepted; directory now has {} entries", managed.len());
}
