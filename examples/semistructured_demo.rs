//! §6.3: bounding-schema constraints on semi-structured data.
//!
//! Reproduces both of the paper's §6.3 examples — "each person node must
//! have a (descendant) name node, without having to fix the length of the
//! path", and the country/corporation nesting rules — over a small
//! OEM-style labelled tree.
//!
//! Run with: `cargo run --example semistructured_demo`

use bschema_semistructured::{check, is_satisfiable, ConstraintSet, DataGraph, PathConstraint};

fn main() {
    let constraints = ConstraintSet::new()
        .with(PathConstraint::descendant("person", "name"))
        .with(PathConstraint::no_descendant("country", "country"));
    println!("constraints:");
    for c in constraints.constraints() {
        println!("  {c}");
    }
    println!("satisfiable at all: {}\n", is_satisfiable(&constraints));

    // A world database: countries hold national corporations; corporations
    // hold subsidiaries (conglomerates) and, for multinationals at the top
    // level, countries.
    let mut world = DataGraph::new();
    let db = world.add_root("db");

    let us = world.add_child(db, "country");
    world.add_value_child(us, "name", "United States");
    let national = world.add_child(us, "corporation");
    world.add_value_child(national, "name", "AT&T");
    let subsidiary = world.add_child(national, "corporation");
    world.add_value_child(subsidiary, "name", "AT&T Labs");

    let multinational = world.add_child(db, "corporation");
    world.add_value_child(multinational, "name", "MegaCorp");
    let de = world.add_child(multinational, "country");
    world.add_value_child(de, "name", "Germany");

    let person = world.add_child(subsidiary, "person");
    let contact = world.add_child(person, "contact");
    world.add_value_child(contact, "name", "divesh"); // name two levels down

    let violations = check(&mut world, &constraints);
    println!("world database ({} nodes): {} violations", world.len(), violations.len());

    // Now break both constraints.
    let anon = world.add_child(db, "person");
    world.add_value_child(anon, "age", "42"); // person with no name anywhere
    world.add_child(de, "country"); // country nested under a country

    let violations = check(&mut world, &constraints);
    println!("\nafter two bad edits: {} violations", violations.len());
    for v in &violations {
        println!("  [{}] {}", v.constraint, v.message);
    }

    // Satisfiability interplay: requiring a person while forbidding its only
    // way to satisfy the name requirement is unsatisfiable.
    let impossible = ConstraintSet::new()
        .with(PathConstraint::descendant("person", "name"))
        .with(PathConstraint::no_descendant("person", "name"))
        .with(PathConstraint::RequireLabel("person".into()));
    println!(
        "\nperson-must-and-must-not-have-name + ◇person satisfiable: {}",
        is_satisfiable(&impossible)
    );
}
