//! A directory-enabled networks (DEN) scenario — the paper's §1 motivation
//! beyond white pages: "network resources and policies".
//!
//! The bounding-schema below models sites containing network devices, with
//! policies attached under the devices they govern:
//!
//! * every site must contain at least one router (required descendant);
//! * every policy must hang directly under a device (required parent);
//! * interfaces live under devices, never under policies;
//! * a person must never appear inside the network tree (the §1 example of
//!   prohibiting inappropriate combinations, inverted).
//!
//! Run with: `cargo run --example network_policies`

use bschema_core::managed::{ManagedDirectory, ManagedError};
use bschema_core::schema::{DirectorySchema, ForbidKind, RelKind};
use bschema_core::updates::Transaction;
use bschema_directory::{AttributeDef, AttributeRegistry, Entry, Syntax};
use bschema_query::Query;

fn den_schema() -> DirectorySchema {
    DirectorySchema::builder()
        .named("directory-enabled networks")
        .core_class("site", "top")
        .and_then(|b| b.core_class("device", "top"))
        .and_then(|b| b.core_class("router", "device"))
        .and_then(|b| b.core_class("switch", "device"))
        .and_then(|b| b.core_class("interface", "top"))
        .and_then(|b| b.core_class("policy", "top"))
        .and_then(|b| b.core_class("qosPolicy", "policy"))
        .and_then(|b| b.core_class("aclPolicy", "policy"))
        .and_then(|b| b.core_class("person", "top"))
        .and_then(|b| b.auxiliary("managed"))
        .and_then(|b| b.allow_aux("device", "managed"))
        .and_then(|b| b.require_attrs("site", ["siteName"]))
        .and_then(|b| b.require_attrs("device", ["deviceId"]))
        .and_then(|b| b.allow_attrs("device", ["vendor"]))
        .and_then(|b| b.require_attrs("interface", ["ifName"]))
        .and_then(|b| b.require_attrs("policy", ["policyName"]))
        .and_then(|b| b.allow_attrs("policy", ["priority"]))
        .and_then(|b| b.allow_attrs("managed", ["mgmtUri"]))
        // Structure bounds.
        .and_then(|b| b.require_class("site"))
        .and_then(|b| b.require_rel("site", RelKind::Descendant, "router"))
        .and_then(|b| b.require_rel("policy", RelKind::Parent, "device"))
        .and_then(|b| b.require_rel("interface", RelKind::Parent, "device"))
        .and_then(|b| b.require_rel("device", RelKind::Ancestor, "site"))
        .and_then(|b| b.forbid_rel("policy", ForbidKind::Descendant, "device"))
        .and_then(|b| b.forbid_rel("site", ForbidKind::Descendant, "person"))
        .map(|b| b.build())
        .expect("DEN schema is well-formed")
}

fn registry() -> AttributeRegistry {
    let mut reg = AttributeRegistry::new();
    for def in [
        AttributeDef::new("siteName", Syntax::DirectoryString).single_valued(),
        AttributeDef::new("deviceId", Syntax::DirectoryString).single_valued(),
        AttributeDef::new("vendor", Syntax::DirectoryString),
        AttributeDef::new("ifName", Syntax::DirectoryString),
        AttributeDef::new("policyName", Syntax::DirectoryString),
        AttributeDef::new("priority", Syntax::Integer).single_valued(),
        AttributeDef::new("mgmtUri", Syntax::Uri),
    ] {
        reg.register(def).expect("fresh names");
    }
    reg
}

fn main() {
    let schema = den_schema();
    let mut net = ManagedDirectory::new(schema, registry()).expect("schema is consistent");
    println!("DEN directory opened; legal yet: {} (◇site unmet)\n", net.is_legal());

    // Bootstrap transaction: a site with a managed router, an interface,
    // and a QoS policy — all in one atomic unit (Theorem 4.1 granularity).
    let mut tx = Transaction::new();
    let site = tx.insert_root(
        Entry::builder().classes(["site", "top"]).attr("siteName", "florham-park").build(),
    );
    let router = tx.insert_under_new(
        site,
        Entry::builder()
            .classes(["router", "device", "top", "managed"])
            .attr("deviceId", "fp-core-1")
            .attr("vendor", "Acme Networks")
            .attr("mgmtUri", "https://mgmt.example/fp-core-1")
            .build(),
    );
    tx.insert_under_new(
        router,
        Entry::builder().classes(["interface", "top"]).attr("ifName", "ge-0/0/0").build(),
    );
    tx.insert_under_new(
        router,
        Entry::builder()
            .classes(["qosPolicy", "policy", "top"])
            .attr("policyName", "gold-voice")
            .attr("priority", "1")
            .build(),
    );
    net.apply(&tx).expect("bootstrap satisfies every bound");
    println!("bootstrapped: {} entries, legal = {}\n", net.len(), net.is_legal());

    // Query: all policies governed by devices in the site.
    let q = Query::object_class("policy").with_ancestor(Query::object_class("site"));
    println!("policies in effect:");
    for id in net.query(&q) {
        let e = net.instance().entry(id).unwrap();
        println!(
            "  {} (priority {})",
            e.first_value("policyName").unwrap_or("?"),
            e.first_value("priority").unwrap_or("-")
        );
    }
    println!();

    // Policy under a policy: forbidden (policies don't govern devices, and
    // `policy →pa device` demands a device parent).
    let policies = net.query(&Query::object_class("qosPolicy"));
    let mut bad = Transaction::new();
    bad.insert_under(
        policies[0],
        Entry::builder().classes(["aclPolicy", "policy", "top"]).attr("policyName", "oops").build(),
    );
    match net.apply(&bad) {
        Err(ManagedError::RolledBack(report)) => {
            println!("nested policy rejected:\n{report}");
        }
        other => panic!("expected rollback, got {other:?}"),
    }

    // A person in the network tree: forbidden outright.
    let sites = net.query(&Query::object_class("site"));
    let mut bad = Transaction::new();
    bad.insert_under(sites[0], Entry::builder().classes(["person", "top"]).build());
    match net.apply(&bad) {
        Err(ManagedError::RolledBack(report)) => {
            println!("person inside site rejected:\n{report}");
        }
        other => panic!("expected rollback, got {other:?}"),
    }

    // Deleting the only router would break `site →de router`: rolled back.
    let routers = net.query(&Query::object_class("router"));
    match net.delete_subtree(routers[0]) {
        Err(ManagedError::RolledBack(report)) => {
            println!("router deletion rejected:\n{report}");
        }
        other => panic!("expected rollback, got {other:?}"),
    }

    println!("final state: {} entries, still legal = {}", net.len(), net.is_legal());
}
